(* Datacenter-scale fan-in flow engine.  See fabric.mli for the model;
   the scaling argument in short:

   - hosts are rates, not state: superposed Poisson sources are Poisson,
     so a port's clients collapse into one arrival process (host ids are
     drawn per flow as data).  Simulated hosts: O(ports).
   - flows are state machines in recycled slots ([Genie.Flow_table]);
     arrivals beyond the circuit pool are rejected, so flow state is
     O(active), never O(offered).
   - endpoints/VCs/buffers are built once per circuit and reused by
     every flow that rides them.
   - latency populations stream into fixed-size histograms
     ([Stats.Streaming_summary]); nothing retains per-flow data.

   Determinism across domain counts: each port's client state is only
   ever touched on its client shard and server state on its server
   shard.  The cross-shard interactions — flow-open metadata, chunk
   PDUs, completion/recycle — all travel at >= prop_delay, the engine's
   lookahead floor, and port Rng streams are split from the root seed,
   so the event history is independent of how shards map to domains. *)

type config = {
  hosts : int;
  ports : int;
  circuits_per_port : int;
  flows : int;
  load : float;
  alpha : float;
  size_min : int;
  size_max : int;
  chunk_bytes : int;
  credit_cells : int;
  retry_us : float;
  adaptive : bool;
  domains : int;
  seed : int;
  params : Net.Net_params.t;
  spec : Machine.Machine_spec.t;
}

let default =
  {
    hosts = 1024;
    ports = 4;
    circuits_per_port = 32;
    flows = 2000;
    load = 0.7;
    alpha = 1.3;
    size_min = 4096;
    size_max = 1 lsl 20;
    chunk_bytes = 16384;
    credit_cells = 512;
    retry_us = 50.;
    adaptive = false;
    domains = 1;
    seed = 42;
    params = Net.Net_params.oc3;
    spec = Experiments.light_spec Machine.Machine_spec.micron_p166;
  }

type outcome = {
  offered : int;
  accepted : int;
  rejected : int;
  completed : int;
  retries : int;
  crc_failures : int;
  rx_bytes : int;
  duration_us : float;
  delivered_mbps : float;
  sojourn_us : Stats.Streaming_summary.t;
  active_high_water : int;
  table_capacity : int;
  adapt_migrations : int;
  adapt_epochs : int;
  digest : string;
}

(* One pooled circuit: a credited VC with an endpoint pair and a reused
   buffer on each side.  The [fl_*] fields are the state machine of the
   flow currently riding the circuit (client shard only); the [rx_*]
   fields are the server shard's view of it.  [in_sem] is the circuit's
   fixed input-side semantics; the output side varies per flow. *)
type circuit = {
  ci : int;
  ea : Genie.Endpoint.t;
  eb : Genie.Endpoint.t;
  cbuf : Genie.Buf.t;
  rbuf : Genie.Buf.t;
  in_sem : Genie.Semantics.t;
  mutable fl_handle : Genie.Flow_table.handle;
  mutable fl_chunks : int;
  mutable fl_sent : int;
  mutable fl_sem : Genie.Semantics.t;
  ctl : Genie.Adapt.t option;
      (* client-shard controller, one per circuit slot: each flow riding
         the circuit starts on the controller's current choice and its
         chunks feed the evidence window — per-flow adaptation in
         O(active) memory. *)
  mutable rx_expected : int;  (* 0 = no flow open server-side *)
  mutable rx_got : int;
  mutable rx_start : float;
}

type port = {
  a : Genie.Host.t;
  b : Genie.Host.t;
  rng : Simcore.Rng.t;
  circuits : circuit array;
  table : int Genie.Flow_table.t;  (* payload: circuit index *)
  free : int array;  (* stack of free circuit indices *)
  mutable free_top : int;
  quota : int;
  mutable offered : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable retries : int;
  mutable host_sum : int;  (* sum of accepted flows' source-host ids *)
  (* server-shard side *)
  sojourn : Stats.Streaming_summary.t;
  mutable completed : int;
  mutable rx_bytes : int;
  mutable crc_failures : int;
}

let app_sems =
  [|
    Genie.Semantics.copy;
    Genie.Semantics.emulated_copy;
    Genie.Semantics.share;
    Genie.Semantics.emulated_share;
  |]

(* Mean of the bounded Pareto on [lo, hi] with tail index [alpha] — sets
   the arrival rate that realizes the configured utilization. *)
let pareto_mean ~alpha ~lo ~hi =
  if Float.abs (alpha -. 1.) < 1e-9 then
    lo *. hi /. (hi -. lo) *. log (hi /. lo)
  else
    let la = lo ** alpha in
    la
    /. (1. -. ((lo /. hi) ** alpha))
    *. (alpha /. (alpha -. 1.))
    *. ((lo ** (1. -. alpha)) -. (hi ** (1. -. alpha)))

let make_buf host ~len =
  let psize = Genie.Host.page_size host in
  let space = Genie.Host.new_space host in
  let region =
    Vm.Address_space.map_region space ~npages:((len + psize - 1) / psize)
  in
  Genie.Buf.make space
    ~addr:(Vm.Address_space.base_addr region ~page_size:psize)
    ~len

let validate cfg =
  if cfg.ports < 1 then invalid_arg "Fabric.run: ports must be >= 1";
  if cfg.hosts < cfg.ports then invalid_arg "Fabric.run: hosts < ports";
  if cfg.circuits_per_port < 1 then
    invalid_arg "Fabric.run: circuits_per_port must be >= 1";
  if cfg.flows < 1 then invalid_arg "Fabric.run: flows must be >= 1";
  if cfg.load <= 0. then invalid_arg "Fabric.run: load must be positive";
  if cfg.alpha <= 0. then invalid_arg "Fabric.run: alpha must be positive";
  if cfg.size_min <= 0 || cfg.size_max < cfg.size_min then
    invalid_arg "Fabric.run: need 0 < size_min <= size_max";
  if cfg.chunk_bytes <= 0 then
    invalid_arg "Fabric.run: chunk_bytes must be positive"

let run cfg =
  validate cfg;
  let engine = Simcore.Engine.create ~domains:cfg.domains () in
  let k = Simcore.Engine.domains engine in
  let root = Simcore.Rng.create ~seed:cfg.seed in
  let prop = cfg.params.Net.Net_params.prop_delay in
  (* Payload bytes per us at line rate: 48 payload bytes per cell. *)
  let bytes_per_us = 48000. /. Net.Net_params.cell_time_ns cfg.params in
  (* Flows stream as whole chunks, so the wire carries the size rounded
     up to a chunk multiple.  The closed-form Pareto mean undershoots
     that; correct it with a deterministic pre-sample (a scratch Rng
     stream beyond the port ids) so the configured load is the load the
     link actually sees. *)
  let mean_size =
    let exact =
      pareto_mean ~alpha:cfg.alpha
        ~lo:(float_of_int cfg.size_min)
        ~hi:(float_of_int cfg.size_max)
    in
    let scratch = Simcore.Rng.stream root ~id:cfg.ports in
    let n = 4096 in
    let acc = ref 0. in
    for _ = 1 to n do
      let s =
        Simcore.Rng.bounded_pareto scratch ~alpha:cfg.alpha
          ~lo:(float_of_int cfg.size_min)
          ~hi:(float_of_int cfg.size_max)
      in
      let chunks = (int_of_float s + cfg.chunk_bytes - 1) / cfg.chunk_bytes in
      acc := !acc +. float_of_int (max 1 chunks * cfg.chunk_bytes)
    done;
    Float.max exact (!acc /. float_of_int n)
  in
  let mean_gap_us = mean_size /. (cfg.load *. bytes_per_us) in
  let make_port i =
    let sa = Simcore.Engine.shard engine ~id:(2 * i mod k) in
    let sb = Simcore.Engine.shard engine ~id:((2 * i + 1) mod k) in
    let a =
      Genie.Host.create sa cfg.params cfg.spec ~name:(Printf.sprintf "f%d-a" i)
    in
    let b =
      Genie.Host.create sb cfg.params cfg.spec ~name:(Printf.sprintf "f%d-b" i)
    in
    Net.Adapter.connect a.Genie.Host.adapter b.Genie.Host.adapter;
    let rng = Simcore.Rng.stream root ~id:i in
    let n = cfg.circuits_per_port in
    let mk_circuit ci =
      let vc = ci + 1 in
      let ea = Genie.Endpoint.create a ~vc ~mode:Net.Adapter.Early_demux in
      let eb = Genie.Endpoint.create b ~vc ~mode:Net.Adapter.Early_demux in
      Net.Adapter.set_credit_limit a.Genie.Host.adapter ~vc
        ~cells:cfg.credit_cells;
      let cbuf = make_buf a ~len:cfg.chunk_bytes in
      Genie.Buf.fill_pattern cbuf ~seed:((i * 8191) + ci);
      let rbuf = make_buf b ~len:cfg.chunk_bytes in
      let in_sem = app_sems.(Simcore.Rng.int rng ~bound:(Array.length app_sems)) in
      let ctl =
        if cfg.adaptive then
          Some
            (Genie.Adapt.create
               ~config:
                 {
                   Genie.Adapt.default_config with
                   epoch_datagrams = 8;
                   window_epochs = 2;
                   dwell_epochs = 2;
                   candidates = Array.to_list app_sems;
                 }
               ~host:a ~scheme:Genie.Stage_cost.Early_demux
               ~sem:Genie.Semantics.copy ())
        else None
      in
      {
        ci;
        ea;
        eb;
        cbuf;
        rbuf;
        in_sem;
        fl_handle = 0;
        fl_chunks = 0;
        fl_sent = 0;
        fl_sem = Genie.Semantics.copy;
        ctl;
        rx_expected = 0;
        rx_got = 0;
        rx_start = 0.;
      }
    in
    {
      a;
      b;
      rng;
      circuits = Array.init n mk_circuit;
      table = Genie.Flow_table.create ~initial:n ~dummy:(-1) ();
      free = Array.init n (fun ci -> n - 1 - ci);
      free_top = n;
      quota =
        (cfg.flows / cfg.ports)
        + (if i < cfg.flows mod cfg.ports then 1 else 0);
      offered = 0;
      accepted = 0;
      rejected = 0;
      retries = 0;
      host_sum = 0;
      sojourn = Stats.Streaming_summary.create ();
      completed = 0;
      rx_bytes = 0;
      crc_failures = 0;
    }
  in
  let ports = Array.init cfg.ports make_port in
  (* Server side: one input per circuit is always posted; each
     completion counts a chunk of the open flow, and the last chunk
     records the sojourn and posts the recycle back to the client
     shard.  Runs entirely on the server shard. *)
  let serve p c =
    let rec post () =
      ignore
        (Genie.Endpoint.input c.eb ~sem:c.in_sem
           ~spec:(Genie.Input_path.App_buffer c.rbuf)
           ~on_complete:(fun r ->
             if Genie.Input_path.ok r then
               p.rx_bytes <- p.rx_bytes + r.Genie.Input_path.payload_len
             else p.crc_failures <- p.crc_failures + 1;
             c.rx_got <- c.rx_got + 1;
             post ();
             if c.rx_expected > 0 && c.rx_got >= c.rx_expected then begin
               p.completed <- p.completed + 1;
               Stats.Streaming_summary.add p.sojourn
                 (Genie.Host.now_us p.b -. c.rx_start);
               c.rx_expected <- 0;
               (* Teardown travels back one propagation delay; only then
                  is the circuit free for the next flow. *)
               Simcore.Engine.at p.a.Genie.Host.engine
                 ~time:
                   (Simcore.Sim_time.add
                      (Simcore.Engine.now p.b.Genie.Host.engine)
                      prop)
                 (fun () ->
                   let freed = Genie.Flow_table.free p.table c.fl_handle in
                   assert freed;
                   p.free.(p.free_top) <- c.ci;
                   p.free_top <- p.free_top + 1)
             end))
    in
    post ()
  in
  (* Client side: stream the flow's chunks, each submitted when the
     previous one's dispose retires (the circuit buffer is reused, so a
     chunk may not be overwritten while the adapter can still read it).
     [`Again] is frame-exhaustion backpressure: retry after a fixed
     backoff.  Runs entirely on the client shard. *)
  let rec send_chunk p c =
    match
      Genie.Endpoint.output c.ea ~sem:c.fl_sem ~buf:c.cbuf
        ~on_complete:(fun () ->
          c.fl_sent <- c.fl_sent + 1;
          (match c.ctl with
          | Some ctl ->
            Genie.Adapt.note_datagram ctl ~len:cfg.chunk_bytes;
            (* Semantics are per datagram: a migration mid-flow simply
               takes effect from the next chunk. *)
            c.fl_sem <- Genie.Adapt.semantics ctl
          | None -> ());
          if c.fl_sent < c.fl_chunks then send_chunk p c)
        ()
    with
    | Ok _ -> ()
    | Error `Again ->
      p.retries <- p.retries + 1;
      Simcore.Engine.schedule p.a.Genie.Host.engine
        ~delay:(Simcore.Sim_time.of_us cfg.retry_us)
        (fun () -> send_chunk p c)
  in
  let open_flow p c ~chunks =
    c.fl_handle <- Genie.Flow_table.alloc p.table c.ci;
    c.fl_chunks <- chunks;
    c.fl_sent <- 0;
    (* The draw always happens so the port's Rng stream alignment is
       identical with adaptation on or off; with a controller the flow
       starts on its current learned choice instead. *)
    let drawn = app_sems.(Simcore.Rng.int p.rng ~bound:(Array.length app_sems)) in
    c.fl_sem <-
      (match c.ctl with
      | Some ctl -> Genie.Adapt.semantics ctl
      | None -> drawn);
    let start = Genie.Host.now_us p.a in
    (* Flow-open metadata reaches the server one propagation delay ahead
       of the first chunk (which also pays serialization). *)
    Simcore.Engine.at p.b.Genie.Host.engine
      ~time:(Simcore.Sim_time.add (Simcore.Engine.now p.a.Genie.Host.engine) prop)
      (fun () ->
        c.rx_expected <- chunks;
        c.rx_got <- 0;
        c.rx_start <- start);
    send_chunk p c
  in
  let drive p =
    let rec arrival () =
      if p.offered < p.quota then begin
        p.offered <- p.offered + 1;
        (* Draws happen unconditionally so the stream's alignment does
           not depend on acceptance. *)
        let size =
          Simcore.Rng.bounded_pareto p.rng ~alpha:cfg.alpha
            ~lo:(float_of_int cfg.size_min)
            ~hi:(float_of_int cfg.size_max)
        in
        let host = Simcore.Rng.int p.rng ~bound:cfg.hosts in
        let gap = Simcore.Rng.exponential p.rng ~mean:mean_gap_us in
        let chunks =
          max 1
            ((int_of_float size + cfg.chunk_bytes - 1) / cfg.chunk_bytes)
        in
        if p.free_top > 0 then begin
          p.free_top <- p.free_top - 1;
          let c = p.circuits.(p.free.(p.free_top)) in
          p.accepted <- p.accepted + 1;
          p.host_sum <- p.host_sum + host;
          open_flow p c ~chunks
        end
        else p.rejected <- p.rejected + 1;
        Simcore.Engine.schedule p.a.Genie.Host.engine
          ~delay:(Simcore.Sim_time.of_us (Float.max 0.05 gap))
          arrival
      end
    in
    arrival ()
  in
  Array.iter (fun p -> Array.iter (fun c -> serve p c) p.circuits) ports;
  Array.iter drive ports;
  Simcore.Engine.run engine;
  (* Sequential post-run fold, port order fixed. *)
  let offered = ref 0
  and accepted = ref 0
  and rejected = ref 0
  and completed = ref 0
  and retries = ref 0
  and crc_failures = ref 0
  and rx_bytes = ref 0
  and hw = ref 0
  and capacity = ref 0
  and migrations = ref 0
  and adapt_epochs = ref 0 in
  let sojourn = ref (Stats.Streaming_summary.create ()) in
  let acc = Buffer.create 256 in
  Array.iteri
    (fun i p ->
      let p_migr = ref 0 and p_epochs = ref 0 in
      Array.iter
        (fun c ->
          match c.ctl with
          | Some ctl ->
            p_migr := !p_migr + Genie.Adapt.migrations ctl;
            p_epochs := !p_epochs + Genie.Adapt.epochs ctl
          | None -> ())
        p.circuits;
      migrations := !migrations + !p_migr;
      adapt_epochs := !adapt_epochs + !p_epochs;
      offered := !offered + p.offered;
      accepted := !accepted + p.accepted;
      rejected := !rejected + p.rejected;
      completed := !completed + p.completed;
      retries := !retries + p.retries;
      crc_failures := !crc_failures + p.crc_failures;
      rx_bytes := !rx_bytes + p.rx_bytes;
      hw := !hw + Genie.Flow_table.high_water p.table;
      capacity := !capacity + Genie.Flow_table.capacity p.table;
      sojourn := Stats.Streaming_summary.merge !sojourn p.sojourn;
      Buffer.add_string acc
        (Printf.sprintf "p%d:o=%d;a=%d;r=%d;rt=%d;c=%d;by=%d;cf=%d;hw=%d;hs=%d;s=%s|"
           i p.offered p.accepted p.rejected p.retries p.completed p.rx_bytes
           p.crc_failures
           (Genie.Flow_table.high_water p.table)
           p.host_sum
           (Stats.Streaming_summary.digest p.sojourn));
      (* Appended only when adaptation is on: the digest of a
         non-adaptive run is byte-identical to what it was before the
         controller existed. *)
      if cfg.adaptive then
        Buffer.add_string acc
          (Printf.sprintf "am=%d;ae=%d|" !p_migr !p_epochs))
    ports;
  let duration_us = Simcore.Sim_time.to_us (Simcore.Engine.now engine) in
  Buffer.add_string acc
    (Printf.sprintf "t=%d" (Simcore.Sim_time.to_ns (Simcore.Engine.now engine)));
  {
    offered = !offered;
    accepted = !accepted;
    rejected = !rejected;
    completed = !completed;
    retries = !retries;
    crc_failures = !crc_failures;
    rx_bytes = !rx_bytes;
    duration_us;
    delivered_mbps =
      (if duration_us > 0. then 8. *. float_of_int !rx_bytes /. duration_us
       else 0.);
    sojourn_us = !sojourn;
    active_high_water = !hw;
    table_capacity = !capacity;
    adapt_migrations = !migrations;
    adapt_epochs = !adapt_epochs;
    digest = Digest.to_hex (Digest.string (Buffer.contents acc));
  }
