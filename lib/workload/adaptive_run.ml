type phase = { len : int; rounds : int }

type config = {
  scheme : Genie.Stage_cost.scheme;
  phases : phase list;
  warmup : int;
  params : Net.Net_params.t;
  spec : Machine.Machine_spec.t;
  thresholds : Genie.Thresholds.t option;
  recv_offset : int;
  domains : int;
}

let default ~scheme ~phases =
  {
    scheme;
    phases;
    warmup = 4;
    params = Net.Net_params.oc3;
    spec = Machine.Machine_spec.micron_p166;
    thresholds = None;
    recv_offset = (match scheme with
      | Genie.Stage_cost.Pooled_unaligned -> 24
      | Genie.Stage_cost.Early_demux | Genie.Stage_cost.Pooled_aligned -> 0);
    domains = 1;
  }

type outcome = {
  mean_rtt_us : float;
  total_us : float;
  rounds : int;
  migrations : int;
  epochs : int;
  final_sem : Genie.Semantics.t;
  last_migration_epoch : int;
  history : (int * string) list;
}

let rx_mode = function
  | Genie.Stage_cost.Early_demux -> Net.Adapter.Early_demux
  | Genie.Stage_cost.Pooled_aligned | Genie.Stage_cost.Pooled_unaligned ->
    Net.Adapter.Pooled

(* The per-round length schedule, derived statically from the config so
   each host can follow it without sharing mutable state. *)
let round_lens cfg =
  Array.concat
    (List.map (fun (p : phase) -> Array.make p.rounds p.len) cfg.phases)

(* Per-host application buffers, one (send, recv) pair per datagram
   length, created on first use. *)
type app_bufs = {
  space : Vm.Address_space.t;
  psize : int;
  offset : int;
  by_len : (int, Genie.Buf.t * Genie.Buf.t) Hashtbl.t;
}

let make_app_buf ab len =
  let npages = (ab.offset + len + ab.psize - 1) / ab.psize in
  let region = Vm.Address_space.map_region ab.space ~npages in
  Genie.Buf.make ab.space
    ~addr:(Vm.Address_space.base_addr region ~page_size:ab.psize + ab.offset)
    ~len

let app_pair ab len =
  match Hashtbl.find_opt ab.by_len len with
  | Some pair -> pair
  | None ->
    let send = make_app_buf ab len and recv = make_app_buf ab len in
    Genie.Buf.fill_pattern send ~seed:7;
    let pair = (send, recv) in
    Hashtbl.add ab.by_len len pair;
    pair

let make_moved_in_buf ab len =
  let npages = (len + ab.psize - 1) / ab.psize in
  let region =
    Vm.Address_space.map_region ab.space ~npages ~state:Vm.Region.Moved_in
  in
  Genie.Buf.make ab.space
    ~addr:(Vm.Address_space.base_addr region ~page_size:ab.psize)
    ~len

(* The per-round policy: [choose] picks the semantics for the next round
   and [note] observes its completion — this is the only difference
   between a static and an adaptive run.  Built from host [a] once the
   world exists, since the adaptive controller samples its counters. *)
type policy = {
  choose : unit -> Genie.Semantics.t;
  note : len:int -> unit;
  controller : Genie.Adapt.t option;
}

let run_rounds cfg ~make_policy =
  let lens = round_lens cfg in
  let total = Array.length lens in
  if total = 0 then invalid_arg "Adaptive_run: empty schedule";
  if cfg.warmup >= total then invalid_arg "Adaptive_run: warmup >= rounds";
  let world =
    Genie.World.create ~domains:cfg.domains ~params:cfg.params
      ~spec_a:cfg.spec ~spec_b:cfg.spec ?thresholds:cfg.thresholds ()
  in
  let a_host = world.Genie.World.a and b_host = world.Genie.World.b in
  let ea, eb =
    Genie.World.endpoint_pair world ~vc:5 ~mode:(rx_mode cfg.scheme)
  in
  let psize = cfg.spec.Machine.Machine_spec.page_size in
  let a_bufs =
    {
      space = Genie.Host.new_space a_host;
      psize;
      offset = cfg.recv_offset;
      by_len = Hashtbl.create 4;
    }
  and b_bufs =
    {
      space = Genie.Host.new_space b_host;
      psize;
      offset = cfg.recv_offset;
      by_len = Hashtbl.create 4;
    }
  in
  let policy = make_policy a_host in
  let choose = policy.choose and note = policy.note in
  (* A moved-in buffer circulating at [a] for system-allocated rounds:
     each system round sends the buffer the previous echo produced. *)
  let a_moved = ref None in
  let rtt = Simcore.Stat.create () in
  let meas_start = ref 0. in
  let round = ref 0 in
  let t_send = ref 0. in
  let now_a () = Genie.Host.now_us a_host in
  let rec start_round () =
    if !round < total then begin
      incr round;
      if !round = cfg.warmup + 1 then meas_start := now_a ();
      let len = lens.(!round - 1) in
      let sem = choose () in
      let out_buf =
        if Genie.Semantics.system_allocated sem then begin
          let buf =
            match !a_moved with
            | Some b when b.Genie.Buf.len = len -> b
            | _ -> make_moved_in_buf a_bufs len
          in
          a_moved := None;
          buf
        end
        else fst (app_pair a_bufs len)
      in
      t_send := now_a ();
      (match Genie.Endpoint.output ea ~sem ~buf:out_buf () with
      | Ok _ -> ()
      | Error `Again -> failwith "Adaptive_run: output rejected");
      (* Prepost the echo input: its prepare work overlaps the outbound
         transfer, off the critical path, as in the paper's breakdown. *)
      let spec =
        if Genie.Semantics.system_allocated sem then
          Genie.Input_path.Sys_alloc { space = a_bufs.space; len }
        else Genie.Input_path.App_buffer (snd (app_pair a_bufs len))
      in
      ignore (Genie.Endpoint.input ea ~sem ~spec ~on_complete:on_a_recv)
    end
  and on_a_recv (r : Genie.Input_path.result) =
    if not (Genie.Input_path.ok r) then failwith "Adaptive_run: corrupt echo";
    if !round > cfg.warmup then Simcore.Stat.add rtt (now_a () -. !t_send);
    (match r.Genie.Input_path.buf with
    | Some buf when buf.Genie.Buf.space == a_bufs.space ->
      (* A system-allocated echo produced a fresh moved-in buffer. *)
      if
        Vm.Address_space.region_of_addr buf.Genie.Buf.space
          ~vaddr:buf.Genie.Buf.addr
        |> fun rg -> rg.Vm.Region.state = Vm.Region.Moved_in
      then a_moved := Some buf
    | _ -> ());
    note ~len:lens.(!round - 1);
    start_round ()
  in
  (* Host [b]: a fixed plain-copy reflector.  It follows the same static
     schedule for its posted input lengths; its costs are identical
     across candidates and cancel out of every comparison. *)
  let b_round = ref 0 in
  let rec post_b_input () =
    incr b_round;
    if !b_round <= total then begin
      let len = lens.(!b_round - 1) in
      let spec = Genie.Input_path.App_buffer (snd (app_pair b_bufs len)) in
      ignore
        (Genie.Endpoint.input eb ~sem:Genie.Semantics.copy ~spec
           ~on_complete:on_b_recv)
    end
  and on_b_recv (r : Genie.Input_path.result) =
    if not (Genie.Input_path.ok r) then failwith "Adaptive_run: corrupt forward";
    let echo =
      match r.Genie.Input_path.buf with Some b -> b | None -> assert false
    in
    (match Genie.Endpoint.output eb ~sem:Genie.Semantics.copy ~buf:echo () with
    | Ok _ -> ()
    | Error `Again -> failwith "Adaptive_run: echo rejected");
    post_b_input ()
  in
  post_b_input ();
  start_round ();
  Genie.World.run world;
  let migrations, epochs, last_migration_epoch =
    match policy.controller with
    | Some c ->
      ( Genie.Adapt.migrations c,
        Genie.Adapt.epochs c,
        Genie.Adapt.last_migration_epoch c )
    | None -> (0, 0, 0)
  in
  {
    mean_rtt_us = Simcore.Stat.mean rtt;
    total_us = now_a () -. !meas_start;
    rounds = Simcore.Stat.count rtt;
    migrations;
    epochs;
    final_sem = choose ();
    last_migration_epoch;
    history = [];
  }

let run_static (cfg : config) ~sem =
  run_rounds cfg ~make_policy:(fun _host ->
      { choose = (fun () -> sem); note = (fun ~len:_ -> ()); controller = None })

let run_adaptive ?adapt cfg ~start =
  let history = ref [] in
  let outcome =
    run_rounds cfg ~make_policy:(fun host ->
        let c =
          Genie.Adapt.create ?config:adapt ~host ~scheme:cfg.scheme ~sem:start
            ()
        in
        let note ~len =
          let before = Genie.Adapt.migrations c in
          Genie.Adapt.note_datagram c ~len;
          if Genie.Adapt.migrations c > before then
            history :=
              ( Genie.Adapt.last_migration_epoch c,
                Genie.Semantics.name (Genie.Adapt.semantics c) )
              :: !history
        in
        {
          choose = (fun () -> Genie.Adapt.semantics c);
          note;
          controller = Some c;
        })
  in
  { outcome with history = List.rev !history }

(* {1 Canonical regimes} *)

type regime = {
  r_name : string;
  r_config : config;
  r_candidates : Genie.Semantics.t list;
  r_adapt : Genie.Adapt.config;
}

let no_conv cfg = { cfg with thresholds = Some Genie.Thresholds.no_conversion }

(* Controller parameters for single-regime runs: 16-datagram epochs, a
   4-epoch window and 3-epoch dwell over ~26 epochs. *)
let steady_adapt candidates =
  { Genie.Adapt.default_config with candidates }

(* Mixed runs must re-migrate within each phase block: shorter epochs,
   window and dwell, so the controller trails a phase boundary by only
   a handful of datagrams. *)
let nimble_adapt candidates =
  {
    Genie.Adapt.default_config with
    epoch_datagrams = 4;
    window_epochs = 2;
    dwell_epochs = 2;
    candidates;
  }

let strong_corners =
  Genie.Semantics.
    [ copy; emulated_copy; move; emulated_move ]

(* The pair the paper's offline length thresholds arbitrate between
   (Section 6): a strong-integrity, application-allocated service can
   run as plain copy or as emulated copy, and the winner crosses over
   with datagram size. *)
let conversion_pair = Genie.Semantics.[ copy; emulated_copy ]

let system_corners =
  Genie.Semantics.[ move; emulated_move; weak_move; emulated_weak_move ]

let single ~name ~scheme ~len ~candidates ~adapt =
  {
    r_name = name;
    r_config = no_conv (default ~scheme ~phases:[ { len; rounds = 416 } ]);
    r_candidates = candidates;
    r_adapt = adapt candidates;
  }

let regimes =
  [
    single ~name:"short" ~scheme:Genie.Stage_cost.Early_demux ~len:192
      ~candidates:strong_corners ~adapt:steady_adapt;
    single ~name:"half_page" ~scheme:Genie.Stage_cost.Early_demux ~len:2048
      ~candidates:strong_corners ~adapt:steady_adapt;
    single ~name:"large" ~scheme:Genie.Stage_cost.Early_demux ~len:61440
      ~candidates:Genie.Semantics.all ~adapt:steady_adapt;
    single ~name:"pooled_large" ~scheme:Genie.Stage_cost.Pooled_aligned
      ~len:61440 ~candidates:system_corners ~adapt:steady_adapt;
  ]

(* Short phases are weighted heavily: plain copy's short-datagram edge
   over emulated copy is ~100 us/round while emulated copy's
   large-datagram edge is ~2 ms/round, so a balanced block would let
   static emulated copy win outright and there would be nothing for an
   online controller to exploit.  288/48 makes both statics lose to
   phase-following by a clear margin. *)
let mixed_regime =
  let block = [ { len = 192; rounds = 288 }; { len = 61440; rounds = 48 } ] in
  let phases = List.concat (List.init 4 (fun _ -> block)) in
  {
    r_name = "mixed";
    r_config = no_conv (default ~scheme:Genie.Stage_cost.Early_demux ~phases);
    r_candidates = conversion_pair;
    r_adapt = nimble_adapt conversion_pair;
  }

let find_regime name =
  List.find_opt (fun r -> r.r_name = name) (mixed_regime :: regimes)

type convergence = {
  c_regime : string;
  c_static_us : (string * float) list;
  c_winner : string;
  c_start : string;
  c_adaptive_us : float;
  c_final : string;
  c_epochs : int;
  c_migrations : int;
  c_last_migration_epoch : int;
  c_settled : bool;
}

let converge ?(domains = 1) ~start_index regime =
  let cfg = { regime.r_config with domains } in
  let statics =
    List.map
      (fun sem ->
        (Genie.Semantics.name sem, (run_static cfg ~sem).mean_rtt_us))
      regime.r_candidates
  in
  let winner, _ =
    List.fold_left
      (fun ((_, bu) as best) ((_, u) as cand) ->
        if u < bu then cand else best)
      (List.hd statics) (List.tl statics)
  in
  let losers =
    List.filter
      (fun s -> Genie.Semantics.name s <> winner)
      regime.r_candidates
  in
  let start = List.nth losers (start_index mod List.length losers) in
  let out = run_adaptive ~adapt:regime.r_adapt cfg ~start in
  let settled =
    Genie.Semantics.name out.final_sem = winner
    && out.last_migration_epoch * 2 <= out.epochs
  in
  {
    c_regime = regime.r_name;
    c_static_us = statics;
    c_winner = winner;
    c_start = Genie.Semantics.name start;
    c_adaptive_us = out.mean_rtt_us;
    c_final = Genie.Semantics.name out.final_sem;
    c_epochs = out.epochs;
    c_migrations = out.migrations;
    c_last_migration_epoch = out.last_migration_epoch;
    c_settled = settled;
  }
