(** Datacenter-scale fan-in flow engine.

    A scenario generator for an N-host fan-in service: [hosts] logical
    client hosts offer flows with heavy-tailed (bounded-Pareto) sizes as
    an open-loop Poisson process into a service spread over [ports]
    simulated host pairs, with connection churn — flows open, stream
    their bytes as chunked datagrams under per-VC credit flow control,
    and close, recycling their circuit.

    The engine scales by keeping {e state} proportional to what is
    active, not to what is offered:

    - The N logical hosts are not N simulated hosts.  Superposed Poisson
      sources are again Poisson, so the clients of a port collapse
      exactly into one arrival process of the aggregate rate; a flow
      carries its source-host id as data.  Host state is O(ports).
    - Flows are lightweight state machines recycled through a
      generation-stamped free list ({!Genie.Flow_table}); an arrival
      that finds no free circuit is {e rejected} (connection refused
      under overload), so live flow state is capped by the circuit
      pools, O(active flows), however many flows a run offers.
    - Endpoints, VCs and their buffers are pooled per port and reused
      across every flow that rides them.
    - Per-flow sojourn times stream into a fixed-memory
      {!Stats.Streaming_summary} per port, merged after the run.

    Mixed semantics: each flow draws its output semantics from the four
    application-allocated corners of the taxonomy; each circuit fixes an
    input-side semantics at pool construction.

    Runs are deterministic for a given [seed] {e and independent of the
    domain count}: all per-port client state lives on the port's client
    shard, server state on its server shard, and every cross-shard
    interaction travels at or beyond the propagation delay, inside the
    engine's conservative-lookahead contract.  {!outcome.digest} is the
    gate. *)

type config = {
  hosts : int;  (** logical client hosts fanning in *)
  ports : int;  (** simulated host pairs carrying them *)
  circuits_per_port : int;  (** pooled VCs per port = active-flow cap *)
  flows : int;  (** total flows to offer across all ports *)
  load : float;  (** target utilization of each port's link, in (0, ~1+] *)
  alpha : float;  (** bounded-Pareto tail index of flow sizes *)
  size_min : int;  (** smallest flow, bytes *)
  size_max : int;  (** truncation of the size tail, bytes *)
  chunk_bytes : int;  (** flows stream as datagrams of this size *)
  credit_cells : int;  (** per-VC credit window on the client adapter *)
  retry_us : float;  (** backoff before retrying an [`Again] output *)
  adaptive : bool;
      (** give every circuit slot a {!Genie.Adapt} controller on its
          client host: each flow riding the slot starts on the learned
          choice, its chunks feed the evidence window, and migrations
          take effect from the next chunk — per-flow adaptation that
          stays O(active flows) because controllers live in the circuit
          pool.  When [false] the engine behaves (and digests)
          byte-identically to a build without the controller. *)
  domains : int;  (** engine shards; must not change the digest *)
  seed : int;
  params : Net.Net_params.t;
  spec : Machine.Machine_spec.t;
}

val default : config
(** 1024 hosts over 4 ports, 32 circuits/port, 2000 flows at load 0.7,
    Pareto(1.3) sizes in [4 KB, 1 MB], 16 KB chunks, OC-3, seed 42. *)

type outcome = {
  offered : int;
  accepted : int;
  rejected : int;  (** arrivals that found no free circuit *)
  completed : int;  (** flows fully received server-side *)
  retries : int;  (** chunk submissions backpressured and retried *)
  crc_failures : int;
  rx_bytes : int;
  duration_us : float;
  delivered_mbps : float;
  sojourn_us : Stats.Streaming_summary.t;
      (** open-to-last-byte sojourn of every completed flow *)
  active_high_water : int;
      (** peak simultaneous live flows, summed over ports *)
  table_capacity : int;
      (** flow-table slots actually allocated (the memory bound), summed *)
  adapt_migrations : int;
      (** semantics migrations performed by circuit controllers (0 when
          [adaptive] is off) *)
  adapt_epochs : int;  (** evidence epochs closed across all controllers *)
  digest : string;
      (** deterministic digest of per-port accounting, sojourn
          populations and final simulated time *)
}

val run : config -> outcome
(** Run the scenario to completion (all accepted flows drain). *)
