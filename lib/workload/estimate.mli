(** Analytic end-to-end latency estimates (the "E" rows of Table 7).

    The paper's breakdown model: end-to-end latency is the base latency
    plus the {e prepare}-time data-passing operations at the sender
    (Table 2) plus, at the receiver, the {e dispose}-time operations
    (Table 3, early demultiplexing) or the {e ready}+{e dispose}-time
    operations (Table 4, pooled buffering).  All other stages overlap
    with network and remote-side latencies.

    The model itself lives in {!Genie.Stage_cost} (the online adaptive
    controller scores candidates with the same calibrated tables); this
    module re-exports it under the historical name. *)

type scheme = Genie.Stage_cost.scheme =
  | Early_demux
  | Pooled_aligned
  | Pooled_unaligned

val scheme_name : scheme -> string

val base_us :
  Machine.Cost_model.t -> Net.Net_params.t -> len:int -> float
(** Base latency: kernel crossing, adapter fixed costs, wire time of the
    framed PDU, propagation, and interrupt dispatch. *)

val latency_us :
  Machine.Cost_model.t ->
  Net.Net_params.t ->
  scheme:scheme ->
  sem:Genie.Semantics.t ->
  len:int ->
  float
(** Estimated one-way latency in microseconds for a datagram of [len]
    payload bytes.  Threshold conversions are not applied (the estimates
    describe the steady large-datagram regime, as in the paper). *)

val mixed_latency_us :
  Machine.Cost_model.t ->
  Net.Net_params.t ->
  scheme:scheme ->
  send_sem:Genie.Semantics.t ->
  recv_sem:Genie.Semantics.t ->
  len:int ->
  float
(** The breakdown model composed across different sender and receiver
    semantics: base + sender prepare of [send_sem] + receiver stages of
    [recv_sem] (paper Section 8). *)
