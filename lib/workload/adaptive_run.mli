(** Scenario runner for online adaptive semantics selection.

    A two-host ping-pong, structured so that {e every} cost that depends
    on the candidate semantics lands on host [a]: the forward output is
    prepared at [a] with the candidate, the echo is received back at [a]
    with the candidate, and the peer [b] runs plain copy in both
    directions (a constant per-round overhead, identical across all
    candidates).  A static run and an adaptive run therefore differ
    only in the per-round choice made at [a] — the fair comparison the
    convergence gates need — and the {!Genie.Adapt} controller is only
    ever touched from [a]'s shard, keeping multi-domain runs
    deterministic.

    The workload is a static phase schedule (both hosts derive their
    per-round datagram lengths from it independently — nothing mutable
    crosses the hosts).  Mixed workloads are phase lists that revisit
    regimes; single-regime workloads are one phase. *)

type phase = { len : int;  (** payload bytes per datagram *) rounds : int }

type config = {
  scheme : Genie.Stage_cost.scheme;
      (** receiver buffering regime: fixes the RX mode and, for
          [Pooled_unaligned], an unaligned application receive buffer *)
  phases : phase list;
  warmup : int;  (** unmeasured leading rounds *)
  params : Net.Net_params.t;
  spec : Machine.Machine_spec.t;
  thresholds : Genie.Thresholds.t option;
  recv_offset : int;
      (** application-buffer byte offset within its page (0 = aligned) *)
  domains : int;
}

val default : scheme:Genie.Stage_cost.scheme -> phases:phase list -> config
(** OC-3 / Micron P166, warmup 4, default thresholds, offset 0 (24 when
    [scheme] is [Pooled_unaligned]), 1 domain. *)

type outcome = {
  mean_rtt_us : float;  (** mean measured round trip, sim time *)
  total_us : float;  (** sim time spent in the measured window *)
  rounds : int;  (** measured rounds *)
  migrations : int;
  epochs : int;
  final_sem : Genie.Semantics.t;
  last_migration_epoch : int;  (** 0 = never migrated *)
  history : (int * string) list;
      (** (epoch, new semantics name) per migration, oldest first *)
}

val run_static : config -> sem:Genie.Semantics.t -> outcome
(** Run the schedule pinned to [sem]; [migrations]/[epochs] are 0. *)

val run_adaptive :
  ?adapt:Genie.Adapt.config -> config -> start:Genie.Semantics.t -> outcome
(** Run the schedule with a {!Genie.Adapt} controller choosing the
    semantics each round, starting from [start]. *)

(** {1 Canonical regimes}

    The workloads the convergence gates run: four single-regime
    schedules whose winners span distinct taxonomy corners, and a mixed
    schedule that revisits two regimes so no static choice can win.
    All use {!Genie.Thresholds.no_conversion} so candidates are
    measurably distinct (with conversion on, every short-datagram
    candidate runs as plain copy and ties). *)

type regime = {
  r_name : string;
  r_config : config;
  r_candidates : Genie.Semantics.t list;
  r_adapt : Genie.Adapt.config;
}

val regimes : regime list
(** The four single-regime workloads, by name — their winners span four
    distinct taxonomy corners: [short] (192 B, early demux,
    strong-integrity corners; winner plain copy), [half_page] (2 KB,
    early demux, strong-integrity corners; winner emulated move),
    [large] (60 KB, early demux, all eight corners; winner emulated
    share), [pooled_large] (60 KB, pooled, system-allocated corners;
    winner emulated weak move).  Candidate sets encode application
    constraints — weak-integrity in-place sharing wins every
    app-allocated regime when nothing forbids it, exactly the paper's
    argument for why integrity is a semantic axis and not a tuning
    knob. *)

val mixed_regime : regime
(** Short-heavy blocks of 192 B datagrams alternating with 60 KB bursts
    under early demultiplexing, restricted to the conversion pair
    (plain copy / emulated copy) whose crossover the paper's offline
    length thresholds arbitrate.  No static choice wins both phases, so
    the adaptive controller — re-migrating at each phase boundary —
    beats every static. *)

val find_regime : string -> regime option
(** Look up a single regime or the mixed one by [r_name]. *)

(** Result of one convergence experiment on a regime: every candidate
    measured statically, the adaptive run from a deliberately wrong
    start, and the settlement verdict. *)
type convergence = {
  c_regime : string;
  c_static_us : (string * float) list;  (** mean RTT per static candidate *)
  c_winner : string;  (** argmin of [c_static_us] *)
  c_start : string;  (** the (losing) semantics the adaptive run began on *)
  c_adaptive_us : float;
  c_final : string;
  c_epochs : int;
  c_migrations : int;
  c_last_migration_epoch : int;
  c_settled : bool;
      (** adaptive ended on [c_winner] with no migration in the final
          half of the run's epochs *)
}

val converge : ?domains:int -> start_index:int -> regime -> convergence
(** Run the full experiment: statics for every candidate, then the
    adaptive run starting from the [start_index]-th non-winning
    candidate (mod their count) — so different indices exercise
    different wrong starts deterministically. *)
