(* Named, deterministic workloads that run with tracing enabled, for the
   `genie_cli trace` subcommand and the exporter tests.  Each scenario
   builds a fresh two-host world sharing one enabled tracer, drives a
   short transfer mix that exercises the mechanism named in its
   description, and returns the tracer for export. *)

module Sem = Genie.Semantics

type t = {
  name : string;
  descr : string;
  run : unit -> Simcore.Tracer.t;
}

let psize = 4096

let make_world () =
  let trace = Simcore.Tracer.create ~enabled:true () in
  let w = Genie.World.create ~trace () in
  (trace, w)

let make_buf host ~len =
  let space = Genie.Host.new_space host in
  let region =
    Vm.Address_space.map_region space ~npages:((len + psize - 1) / psize)
  in
  Genie.Buf.make space
    ~addr:(Vm.Address_space.base_addr region ~page_size:psize)
    ~len

let transfer w ea eb ~sem_out ~sem_in ~len ~seed =
  let rbuf = make_buf (List.nth (Genie.World.hosts w) 1) ~len in
  ignore
    (Genie.Endpoint.input eb ~sem:sem_in
       ~spec:(Genie.Input_path.App_buffer rbuf)
       ~on_complete:(fun _ -> ()));
  let sbuf = make_buf (List.hd (Genie.World.hosts w)) ~len in
  Genie.Buf.fill_pattern sbuf ~seed;
  ignore (Genie.Endpoint.output ea ~sem:sem_out ~buf:sbuf ());
  sbuf

let emulated_copy_run () =
  let trace, w = make_world () in
  let ea, eb = Genie.World.endpoint_pair w ~vc:1 ~mode:Net.Adapter.Early_demux in
  (* Sizes straddling the copy-emulation threshold: the small transfer is
     converted to plain copy, the large ones take the TCOW path. *)
  List.iteri
    (fun i len -> ignore (transfer w ea eb ~sem_out:Sem.emulated_copy ~sem_in:Sem.emulated_copy ~len ~seed:i))
    [ 1024; 16384; 61440 ];
  Genie.World.run w;
  trace

let copy_pooled_run () =
  let trace, w = make_world () in
  let ea, eb = Genie.World.endpoint_pair w ~vc:1 ~mode:Net.Adapter.Pooled in
  List.iteri
    (fun i len -> ignore (transfer w ea eb ~sem_out:Sem.copy ~sem_in:Sem.copy ~len ~seed:i))
    [ 4096; 32768 ];
  Genie.World.run w;
  trace

let move_run () =
  let trace, w = make_world () in
  let ea, eb = Genie.World.endpoint_pair w ~vc:1 ~mode:Net.Adapter.Early_demux in
  let a = List.hd (Genie.World.hosts w) and b = List.nth (Genie.World.hosts w) 1 in
  let rspace = Genie.Host.new_space b in
  let len = 32768 in
  ignore
    (Genie.Endpoint.input eb ~sem:Sem.move
       ~spec:(Genie.Input_path.Sys_alloc { space = rspace; len })
       ~on_complete:(fun _ -> ()));
  (* Move output requires a moved-in (system-allocated) source region. *)
  let sbuf = Genie.Sys_buffers.alloc a (Genie.Host.new_space a) ~len in
  Genie.Buf.fill_pattern sbuf ~seed:7;
  ignore (Genie.Endpoint.output ea ~sem:Sem.move ~buf:sbuf ());
  Genie.World.run w;
  trace

let tcow_poke_run () =
  let trace, w = make_world () in
  let ea, eb = Genie.World.endpoint_pair w ~vc:1 ~mode:Net.Adapter.Early_demux in
  let len = 61440 in
  let sbuf = transfer w ea eb ~sem_out:Sem.emulated_copy ~sem_in:Sem.emulated_copy ~len ~seed:3 in
  (* Write into the in-flight strong-integrity output buffer before the
     transmit retires: the write fault must break TCOW, not the data. *)
  Vm.Address_space.write sbuf.Genie.Buf.space ~addr:sbuf.Genie.Buf.addr
    (Bytes.make 64 'X');
  Genie.World.run w;
  trace

let outboard_run () =
  let trace, w = make_world () in
  let ea, eb = Genie.World.endpoint_pair w ~vc:1 ~mode:Net.Adapter.Outboard in
  List.iteri
    (fun i len -> ignore (transfer w ea eb ~sem_out:Sem.emulated_copy ~sem_in:Sem.emulated_copy ~len ~seed:i))
    [ 8192; 61440 ];
  Genie.World.run w;
  trace

let all =
  [
    {
      name = "emulated-copy";
      descr =
        "emulated-copy transfers straddling the conversion threshold \
         (early-demultiplexed VC)";
      run = emulated_copy_run;
    };
    {
      name = "copy-pooled";
      descr = "plain-copy transfers through pooled in-host buffering";
      run = copy_pooled_run;
    };
    {
      name = "move";
      descr = "move semantics end to end: region moves out of the sender \
               and into a fresh receiver region";
      run = move_run;
    };
    {
      name = "tcow-poke";
      descr =
        "application write into an in-flight emulated-copy output buffer \
         (TCOW break)";
      run = tcow_poke_run;
    };
    {
      name = "outboard";
      descr = "emulated-copy transfers staged through outboard adapter \
               memory (DMA events)";
      run = outboard_run;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
