(** Costs of primitive data-passing operations.

    The model follows Section 8 of the paper: every primitive operation has
    a latency of the form [mult * B + fixed] where [B] is the number of
    bytes processed, and each parameter belongs to a scaling domain that
    says how it changes across machines:

    - {e CPU-dominated} parameters scale with the inverse of the machine's
      integer rating (SPECint95);
    - {e memory-dominated} parameters scale with the inverse of main-memory
      copy bandwidth;
    - {e cache-dominated} parameters (the copyin rate) sit between the L2
      and memory copy bandwidths, because output data is partly read from a
      warm cache;
    - {e device} parameters are fixed hardware latencies that do not scale
      with the host.

    On the reference platform (Micron P166) the parameters are calibrated
    to Table 6 of the paper.  On other platforms they are derived by the
    scaling rules above, with a deterministic per-operation
    microarchitecture factor for CPU-dominated parameters: the paper's
    Table 8 shows that CPU costs scale with SPECint only in geometric mean,
    with small variance on the same microarchitecture and large variance
    across architectures. *)

type op =
  | Copyin  (** copy from application buffer into a system buffer *)
  | Copyout  (** copy from a system buffer out to the application buffer *)
  | Zero_fill  (** zeroing the unused portion of a page (move input) *)
  | Reference  (** page referencing: build descriptor, check rights, count *)
  | Unreference
  | Wire
  | Unwire
  | Read_only  (** remove write permission from PTEs (TCOW arm) *)
  | Invalidate  (** remove all access permissions from PTEs *)
  | Swap_pages  (** swap pages between system and application buffers *)
  | Region_create
  | Region_remove
  | Region_fill  (** insert input pages into a fresh region's object *)
  | Region_fill_overlay_refill  (** pooled move: fill region + refill pool *)
  | Region_mark_out
  | Region_mark_in
  | Region_map  (** enter PTEs for a freshly filled region *)
  | Region_check  (** verify a cached region is still mapped *)
  | Region_check_unref_reinstate_mark_in  (** emulated move input dispose *)
  | Region_check_unref_mark_in  (** emulated weak move input dispose *)
  | Overlay_allocate
  | Overlay  (** point the device at overlay buffers *)
  | Overlay_deallocate
  | Sysbuf_allocate
  | Sysbuf_deallocate
  | Syscall_entry  (** fixed kernel-crossing cost on the output/input call *)
  | Interrupt_dispatch  (** RX interrupt + driver fixed cost *)
  | Disk_seek  (** average seek + rotational delay before a transfer *)
  | Disk_read  (** media transfer into host memory, per byte *)
  | Disk_write  (** media transfer from host memory, per byte *)
  | Fsync_barrier  (** flush-barrier command: order all prior writes *)
  | Cache_lookup  (** page-cache hash probe on a file read/write *)
  | Readahead_issue  (** sequential detector decides and queues read-ahead *)
  | Writeback_schedule  (** dirty page queued for batched writeback *)

type domain = Cpu | Memory | Cache | Device

val all_ops : op list
val op_name : op -> string

type t

val create : Machine_spec.t -> t
(** Build the cost table for a machine.  [Machine_spec.micron_p166] yields
    exactly the Table 6 calibration; other machines are scaled. *)

val spec : t -> Machine_spec.t

val mult_ns_per_byte : t -> op -> float
val fixed_ns : t -> op -> float

val mult_domain : op -> domain
(** Scaling domain of the multiplicative factor. *)

val cost : t -> op -> bytes:int -> Simcore.Sim_time.t
(** [mult * bytes + fixed], rounded to nanoseconds.  Callers pass the
    number of bytes the operation actually processes; for per-page VM
    operations use {!cost_pages}. *)

val cost_pages : t -> op -> pages:int -> Simcore.Sim_time.t
(** Per-page operations: [bytes = pages * page_size].  The paper's Table 6
    expresses these as byte-linear fits over page-multiple datagrams; the
    per-page cost is [mult * page_size]. *)

val pp_op_table : Format.formatter -> t -> unit
