type op =
  | Copyin
  | Copyout
  | Zero_fill
  | Reference
  | Unreference
  | Wire
  | Unwire
  | Read_only
  | Invalidate
  | Swap_pages
  | Region_create
  | Region_remove
  | Region_fill
  | Region_fill_overlay_refill
  | Region_mark_out
  | Region_mark_in
  | Region_map
  | Region_check
  | Region_check_unref_reinstate_mark_in
  | Region_check_unref_mark_in
  | Overlay_allocate
  | Overlay
  | Overlay_deallocate
  | Sysbuf_allocate
  | Sysbuf_deallocate
  | Syscall_entry
  | Interrupt_dispatch
  (* Storage path (PR 8).  New ops are appended so the positional
     [op_index] seeding of [micro_factor] keeps every pre-existing op's
     scaled cost bit-identical on non-reference machines. *)
  | Disk_seek
  | Disk_read
  | Disk_write
  | Fsync_barrier
  | Cache_lookup
  | Readahead_issue
  | Writeback_schedule

type domain = Cpu | Memory | Cache | Device

let all_ops =
  [
    Copyin; Copyout; Zero_fill; Reference; Unreference; Wire; Unwire;
    Read_only; Invalidate; Swap_pages; Region_create; Region_remove; Region_fill;
    Region_fill_overlay_refill; Region_mark_out; Region_mark_in; Region_map;
    Region_check; Region_check_unref_reinstate_mark_in;
    Region_check_unref_mark_in; Overlay_allocate; Overlay; Overlay_deallocate;
    Sysbuf_allocate; Sysbuf_deallocate; Syscall_entry; Interrupt_dispatch;
    Disk_seek; Disk_read; Disk_write; Fsync_barrier; Cache_lookup;
    Readahead_issue; Writeback_schedule;
  ]

let op_name = function
  | Copyin -> "copyin"
  | Copyout -> "copyout"
  | Zero_fill -> "zero-fill"
  | Reference -> "reference"
  | Unreference -> "unreference"
  | Wire -> "wire"
  | Unwire -> "unwire"
  | Read_only -> "read-only"
  | Invalidate -> "invalidate"
  | Swap_pages -> "swap"
  | Region_create -> "region create"
  | Region_remove -> "region remove"
  | Region_fill -> "region fill"
  | Region_fill_overlay_refill -> "region fill & overlay refill"
  | Region_mark_out -> "region mark out"
  | Region_mark_in -> "region mark in"
  | Region_map -> "region map"
  | Region_check -> "region check"
  | Region_check_unref_reinstate_mark_in ->
    "region check, unreference, reinstate, mark in"
  | Region_check_unref_mark_in -> "region check, unreference, mark in"
  | Overlay_allocate -> "overlay allocate"
  | Overlay -> "overlay"
  | Overlay_deallocate -> "overlay deallocate"
  | Sysbuf_allocate -> "system buffer allocate"
  | Sysbuf_deallocate -> "system buffer deallocate"
  | Syscall_entry -> "syscall entry"
  | Interrupt_dispatch -> "interrupt dispatch"
  | Disk_seek -> "disk seek"
  | Disk_read -> "disk read"
  | Disk_write -> "disk write"
  | Fsync_barrier -> "fsync barrier"
  | Cache_lookup -> "page-cache lookup"
  | Readahead_issue -> "read-ahead issue"
  | Writeback_schedule -> "writeback schedule"

let op_index op =
  let rec find i = function
    | [] -> assert false
    | o :: rest -> if o = op then i else find (i + 1) rest
  in
  find 0 all_ops

(* Reference calibration: Table 6 of the paper (Micron P166), in
   microseconds per byte and microseconds.  The entries not printed in
   Table 6 (zero-fill, buffer allocator, syscall, interrupt) are chosen so
   that the end-to-end fits of Table 7 and the base latency decomposition
   (base = 0.0598 B + 130) are reproduced; see DESIGN.md. *)
let reference_us op =
  match op with
  | Copyin -> (0.0180, -3.)
  | Copyout -> (0.0220, 15.)
  | Zero_fill -> (0.0110, 2.)
  | Reference -> (0.000363, 5.)
  | Unreference -> (0.000100, 2.)
  | Wire -> (0.00141, 18.)
  | Unwire -> (0.000237, 10.)
  | Read_only -> (0.000367, 2.)
  | Invalidate -> (0.000373, 2.)
  | Swap_pages -> (0.00163, 15.)
  | Region_create -> (0., 24.)
  | Region_remove -> (0.0003, 20.)
  | Region_fill -> (0.000398, 9.)
  | Region_fill_overlay_refill -> (0.000716, 11.)
  | Region_mark_out -> (0., 3.)
  | Region_mark_in -> (0., 1.)
  | Region_map -> (0.000474, 6.)
  | Region_check -> (0., 5.)
  | Region_check_unref_reinstate_mark_in -> (0.000507, 11.)
  | Region_check_unref_mark_in -> (0.000194, 6.)
  | Overlay_allocate -> (0., 7.)
  | Overlay -> (0., 7.)
  | Overlay_deallocate -> (0.000344, 12.)
  | Sysbuf_allocate -> (0., 1.)
  | Sysbuf_deallocate -> (0., 1.)
  | Syscall_entry -> (0., 35.)
  | Interrupt_dispatch -> (0., 45.)
  (* Storage calibration: a mid-90s fast-SCSI disk in the Micron P166's
     class (~10 MB/s media rate = 0.1 us/B, ~8.5 ms average seek +
     rotational delay, ~200 us per-command device overhead).  Device
     multiplier and fixed terms are device time, not host CPU time, so
     they do not scale with the machine spec (see [scale_param]). *)
  | Disk_seek -> (0., 8500.)
  | Disk_read -> (0.1, 200.)
  | Disk_write -> (0.1, 200.)
  | Fsync_barrier -> (0., 500.)
  | Cache_lookup -> (0., 2.)
  | Readahead_issue -> (0., 3.)
  | Writeback_schedule -> (0., 3.)

let mult_domain = function
  | Copyin -> Cache
  | Copyout | Zero_fill -> Memory
  | Reference | Unreference | Wire | Unwire | Read_only | Invalidate
  | Swap_pages | Region_create | Region_remove | Region_fill | Region_fill_overlay_refill
  | Region_mark_out | Region_mark_in | Region_map | Region_check
  | Region_check_unref_reinstate_mark_in | Region_check_unref_mark_in
  | Overlay_allocate | Overlay | Overlay_deallocate | Sysbuf_allocate
  | Sysbuf_deallocate | Syscall_entry | Interrupt_dispatch -> Cpu
  | Disk_seek | Disk_read | Disk_write | Fsync_barrier -> Device
  | Cache_lookup | Readahead_issue | Writeback_schedule -> Cpu

type t = {
  spec : Machine_spec.t;
  mult_ns : float array;  (** indexed by op, ns per byte *)
  fixed : float array;  (** indexed by op, ns *)
}

let reference_spec = Machine_spec.micron_p166

(* Copyin sits between L2 and main-memory copy bandwidth; the blend weight
   is calibrated so the reference machine reproduces the Table 6 copyin
   rate (0.69 * 486 + 0.31 * 351 = 444 Mbps = 18.0 ns/B). *)
let cache_blend_mbps (spec : Machine_spec.t) =
  (0.69 *. spec.l2_bw_mbps) +. (0.31 *. spec.memory_bw_mbps)

(* Per-operation microarchitecture factor for CPU-dominated parameters on
   non-reference machines.  Same architecture: modest spread above 1 (the
   paper's Gateway ratios ran 1.53..2.59 against an estimate of 1.57);
   different architecture: wide spread (AlphaStation ratios ran
   0.47..3.77).  Deterministic: seeded from the op index and machine
   name. *)
let micro_factor (spec : Machine_spec.t) op =
  if spec.name = reference_spec.name then 1.0
  else begin
    let seed =
      Hashtbl.hash (spec.name, op_index op, "genie-microarch-factor")
    in
    let rng = Simcore.Rng.create ~seed in
    let lo, hi =
      if spec.architecture = reference_spec.architecture then (1.0, 1.32)
      else (0.55, 2.7)
    in
    exp (Simcore.Rng.range_float rng ~lo:(log lo) ~hi:(log hi))
  end

let scale_param spec op domain reference_value =
  match domain with
  | Cpu ->
    reference_value
    *. (reference_spec.specint95 /. spec.Machine_spec.specint95)
    *. micro_factor spec op
  | Memory ->
    reference_value
    *. (reference_spec.memory_bw_mbps /. spec.Machine_spec.memory_bw_mbps)
  | Cache -> reference_value *. (cache_blend_mbps reference_spec /. cache_blend_mbps spec)
  | Device -> reference_value

let create spec =
  let n = List.length all_ops in
  let mult_ns = Array.make n 0. and fixed = Array.make n 0. in
  List.iter
    (fun op ->
      let i = op_index op in
      let mult_us, fixed_us = reference_us op in
      (* The fixed term of a CPU-side operation is CPU work (trap
         handling, data-structure manipulation); only the multiplicative
         factor has a per-domain behaviour.  Device-domain ops are pure
         device time in both terms, so neither scales with the host. *)
      let fixed_domain = if mult_domain op = Device then Device else Cpu in
      mult_ns.(i) <- scale_param spec op (mult_domain op) (mult_us *. 1000.);
      fixed.(i) <- scale_param spec op fixed_domain (fixed_us *. 1000.))
    all_ops;
  { spec; mult_ns; fixed }

let spec t = t.spec
let mult_ns_per_byte t op = t.mult_ns.(op_index op)
let fixed_ns t op = t.fixed.(op_index op)

let cost t op ~bytes =
  if bytes < 0 then invalid_arg "Cost_model.cost: negative byte count";
  let i = op_index op in
  let ns = (t.mult_ns.(i) *. float_of_int bytes) +. t.fixed.(i) in
  Simcore.Sim_time.of_ns (int_of_float (Float.max 0. (Float.round ns)))

let cost_pages t op ~pages =
  cost t op ~bytes:(pages * t.spec.Machine_spec.page_size)

let pp_op_table fmt t =
  Format.fprintf fmt "Primitive operation costs on %s (usec, B = bytes):@."
    t.spec.Machine_spec.name;
  List.iter
    (fun op ->
      Format.fprintf fmt "  %-44s %.6f B + %.1f@." (op_name op)
        (mult_ns_per_byte t op /. 1000.)
        (fixed_ns t op /. 1000.))
    all_ops
