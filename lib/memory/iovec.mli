(** Scatter-gather views.

    An iovec is an ordered list of (storage, offset, length) slices over
    byte buffers and page frames.  Building, slicing and concatenating
    views never copies payload bytes; data moves only when a view is
    materialized ({!to_bytes}), blitted into a destination buffer
    ({!blit_to}), or folded over ({!fold}, e.g. for a CRC at the wire
    boundary).  This is the host-level analogue of the paper's own
    lesson: defer the copy until a boundary actually requires the bytes
    to be contiguous. *)

type t

val empty : t
val length : t -> int

val of_bytes : ?off:int -> ?len:int -> bytes -> t
(** View over a byte range ([off] defaults to 0, [len] to the rest).
    The view aliases the buffer: later writes through the buffer are
    visible through the view. *)

val of_frame : ?off:int -> ?len:int -> Frame.t -> t
(** View over a page-frame range; aliases the frame's backing bytes. *)

val concat : t list -> t
(** Logical concatenation; no bytes move. *)

val sub : t -> off:int -> len:int -> t
(** Sub-view of the byte range [off, off+len); no bytes move.
    @raise Invalid_argument if the range exceeds the view. *)

val blit_to : t -> dst:bytes -> dst_off:int -> unit
(** Copy the whole view into [dst] at [dst_off] in one pass. *)

val to_bytes : t -> bytes
(** Materialize the view as a fresh contiguous buffer. *)

val fold : t -> init:'a -> f:('a -> bytes -> off:int -> len:int -> 'a) -> 'a
(** Fold over the underlying storage slices in order without copying.
    The callback must treat the exposed bytes as read-only. *)

val iter_slices : t -> (bytes -> off:int -> len:int -> unit) -> unit
(** Visit the underlying storage slices in order without copying. *)

val get : t -> int -> char
(** Random access to one byte of the view (bounds-checked). *)
