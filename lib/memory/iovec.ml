type slice = { base : bytes; s_off : int; s_len : int }
type t = { slices : slice list; total : int }

let empty = { slices = []; total = 0 }
let length t = t.total

let make_slice base ~off ~len ~what =
  if off < 0 || len < 0 || off + len > Bytes.length base then
    invalid_arg (Printf.sprintf "Iovec.%s: range out of bounds" what);
  if len = 0 then empty
  else { slices = [ { base; s_off = off; s_len = len } ]; total = len }

let of_bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  make_slice b ~off ~len ~what:"of_bytes"

let of_frame ?(off = 0) ?len (f : Frame.t) =
  let len = match len with Some l -> l | None -> Bytes.length f.Frame.data - off in
  make_slice f.Frame.data ~off ~len ~what:"of_frame"

let concat ts =
  {
    slices = List.concat_map (fun t -> t.slices) ts;
    total = List.fold_left (fun n t -> n + t.total) 0 ts;
  }

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.total then
    invalid_arg "Iovec.sub: range out of bounds";
  if len = 0 then empty
  else begin
    let rec take slices skip remaining acc =
      if remaining = 0 then List.rev acc
      else
        match slices with
        | [] -> assert false
        | s :: rest ->
          if skip >= s.s_len then take rest (skip - s.s_len) remaining acc
          else begin
            let n = min (s.s_len - skip) remaining in
            take rest 0 (remaining - n)
              ({ base = s.base; s_off = s.s_off + skip; s_len = n } :: acc)
          end
    in
    { slices = take t.slices off len []; total = len }
  end

let iter_slices t f =
  List.iter (fun s -> f s.base ~off:s.s_off ~len:s.s_len) t.slices

let fold t ~init ~f =
  List.fold_left (fun acc s -> f acc s.base ~off:s.s_off ~len:s.s_len) init
    t.slices

let blit_to t ~dst ~dst_off =
  let cursor = ref dst_off in
  iter_slices t (fun base ~off ~len ->
      Bytes.blit base off dst !cursor len;
      cursor := !cursor + len)

let to_bytes t =
  let out = Bytes.create t.total in
  blit_to t ~dst:out ~dst_off:0;
  out

let get t i =
  if i < 0 || i >= t.total then invalid_arg "Iovec.get: index out of bounds";
  let rec go slices skip =
    match slices with
    | [] -> assert false
    | s :: rest ->
      if skip < s.s_len then Bytes.get s.base (s.s_off + skip)
      else go rest (skip - s.s_len)
  in
  go t.slices i
