type state = Free | Allocated | Zombie

type t = {
  id : int;
  data : bytes;
  mutable input_refs : int;
  mutable output_refs : int;
  mutable wired : int;
  mutable state : state;
  mutable pageable : bool;
  mutable known_zero : bool;
}

let io_referenced t = t.input_refs > 0 || t.output_refs > 0
let page_size t = Bytes.length t.data
let fill t c = Bytes.fill t.data 0 (Bytes.length t.data) c

let blit_in t ~dst_off ~src ~src_off ~len =
  Bytes.blit src src_off t.data dst_off len

let blit_out t ~src_off ~dst ~dst_off ~len =
  Bytes.blit t.data src_off dst dst_off len

let copy_contents ~src ~dst = Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)

let state_name = function Free -> "free" | Allocated -> "alloc" | Zombie -> "zombie"

let pp fmt t =
  Format.fprintf fmt "frame#%d[%s in=%d out=%d wired=%d]" t.id
    (state_name t.state) t.input_refs t.output_refs t.wired
