(* Classes are powers of two from 2^6 (64 B) to 2^17 (128 KB), enough
   to cover a maximal AAL5 PDU plus headers in one buffer. *)
let min_class_bits = 6
let max_class_bits = 17

type t = {
  classes : bytes Queue.t array;
  max_per_class : int;
  mutable hits : int;
  mutable misses : int;
}

let debug_poison = ref false

let create ?(max_per_class = 64) () =
  {
    classes = Array.init (max_class_bits - min_class_bits + 1) (fun _ -> Queue.create ());
    max_per_class;
    hits = 0;
    misses = 0;
  }

let class_of_len len =
  if len < 0 then invalid_arg "Buf_pool.take: negative length";
  let rec find bits = if 1 lsl bits >= len then bits else find (bits + 1) in
  let bits = find min_class_bits in
  if bits > max_class_bits then None else Some (bits - min_class_bits)

let take t ~len =
  match class_of_len len with
  | None ->
    (* Larger than the biggest class: not poolable. *)
    t.misses <- t.misses + 1;
    Bytes.create len
  | Some cls -> (
    match Queue.take_opt t.classes.(cls) with
    | Some buf ->
      t.hits <- t.hits + 1;
      buf
    | None ->
      t.misses <- t.misses + 1;
      Bytes.create (1 lsl (cls + min_class_bits)))

let give t buf =
  let len = Bytes.length buf in
  if len land (len - 1) = 0 then
    match class_of_len len with
    | Some cls when 1 lsl (cls + min_class_bits) = len ->
      if Queue.length t.classes.(cls) < t.max_per_class then begin
        if !debug_poison then Bytes.fill buf 0 len '\xA5';
        Queue.add buf t.classes.(cls)
      end
    | Some _ | None -> ()

let hits t = t.hits
let misses t = t.misses
