(** Physical memory: the frame pool and the free list.

    Implements {e I/O-deferred page deallocation} (paper Section 3.1):
    [deallocate] refrains from putting a frame with pending I/O references
    on the free list; instead the frame becomes a zombie, and the final
    [unref_input]/[unref_output] places it on the free list.  This is what
    makes in-place I/O safe when an application frees (or exits with)
    memory that a device is still reading or writing. *)

type t

exception Out_of_frames

val create : Machine.Machine_spec.t -> t
(** Frame pool sized to the machine's physical memory. *)

val page_size : t -> int
val total_frames : t -> int
val free_frames : t -> int

val set_trace_scope : t -> Simcore.Tracer.scope -> unit
(** Install the typed trace scope for memory-layer events (frame
    alloc/free counters, I/O-deferred deallocations). *)

val alloc : t -> Frame.t
(** Take a frame off the free list; contents are unspecified.  When
    {!debug_poison} is set the frame is filled with [0xAA] to surface
    missing-zeroing bugs; otherwise allocation is O(1).
    @raise Out_of_frames when physical memory is exhausted. *)

val alloc_zeroed : t -> Frame.t
(** Like {!alloc} but with all-zero contents.  Frames whose bytes are
    provably zero already (tracked via [Frame.known_zero]) skip the
    O(page_size) refill. *)

val alloc_many : t -> int -> Frame.t list
(** Allocate a batch.  On [Out_of_frames] the partially allocated batch
    is released back to the free list before the exception propagates. *)

val deallocate : t -> Frame.t -> unit
(** Release an [Allocated] frame.  If the frame has I/O references it
    becomes a [Zombie] and is reclaimed later; otherwise it goes straight
    to the free list. *)

val ref_input : t -> Frame.t -> unit
val ref_output : t -> Frame.t -> unit

val unref_input : t -> Frame.t -> unit
(** Drop one input reference; reclaims the frame if it is a zombie whose
    last reference this was. *)

val unref_output : t -> Frame.t -> unit

val adopt : t -> Frame.t -> unit
(** Resurrect a zombie frame: a new owner (a re-homed region, see the
    paper's region check) claims it before its pending I/O completes, so
    the final unreference must not free it.  No-op on allocated frames.
    @raise Invalid_argument on free frames. *)

val zombie_count : t -> int
(** Number of frames awaiting reclamation (for tests and monitoring). *)

val frame_by_id : t -> int -> Frame.t

val free_ids : t -> int list
(** Contents of the free list, in allocation order (for the invariant
    checker). *)

val debug_poison : bool ref
(** Poison frames with [0xAA] on allocation (the historical default).
    The fuzzer and the byte-correctness tests set it; production-path
    benchmarks leave it off so [alloc] stays O(1). *)

val skip_deferred_dealloc : bool ref
(** Test-only chaos switch: when set, [deallocate] frees frames even while
    devices hold I/O references — i.e. I/O-deferred page deallocation is
    deliberately broken so the invariant checker can prove it notices.
    Never set outside tests. *)
