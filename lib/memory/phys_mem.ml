type t = {
  frames : Frame.t array;
  free : int Queue.t;
  page_size : int;
  mutable zombies : int;
  mutable trace : Simcore.Tracer.scope option;
}

let traced t f =
  match t.trace with
  | Some s when Simcore.Tracer.on s -> f s
  | _ -> ()

(* Counters also accumulate in count-only mode ([add_counter]
   self-guards), so they stay out of the [traced] event closures. *)
let count t name =
  match t.trace with
  | Some s -> Simcore.Tracer.add_counter s name
  | None -> ()

exception Out_of_frames

let create spec =
  let page_size = spec.Machine.Machine_spec.page_size in
  let n = Machine.Machine_spec.frame_count spec in
  let frames =
    Array.init n (fun id ->
        {
          Frame.id;
          (* Bytes.make (not Bytes.create): the initial known_zero claim
             must actually be true. *)
          data = Bytes.make page_size '\x00';
          input_refs = 0;
          output_refs = 0;
          wired = 0;
          state = Frame.Free;
          pageable = false;
          known_zero = true;
        })
  in
  let free = Queue.create () in
  Array.iter (fun (f : Frame.t) -> Queue.add f.Frame.id free) frames;
  { frames; free; page_size; zombies = 0; trace = None }

let page_size t = t.page_size
let set_trace_scope t scope = t.trace <- Some scope
let total_frames t = Array.length t.frames
let free_frames t = Queue.length t.free
let frame_by_id t id = t.frames.(id)

(* Debug switch: poison freshly allocated frames with 0xAA so consumers
   that rely on uninitialized frame contents trip byte-correctness
   checks.  Off by default — the fuzzer and the poisoning tests turn it
   on — so the common [alloc] is O(1) instead of O(page_size). *)
let debug_poison = ref false

let take_free t =
  match Queue.take_opt t.free with
  | None -> raise Out_of_frames
  | Some id ->
    let frame = t.frames.(id) in
    assert (frame.Frame.state = Frame.Free);
    frame.Frame.state <- Frame.Allocated;
    count t "frame_allocs";
    frame

let alloc t =
  let frame = take_free t in
  if !debug_poison then Frame.fill frame '\xAA';
  frame.Frame.known_zero <- false;
  frame

let alloc_zeroed t =
  let frame = take_free t in
  (* Frames whose contents are provably zero (never handed out since
     [create]) skip the O(page_size) refill. *)
  if not frame.Frame.known_zero then Frame.fill frame '\x00';
  frame.Frame.known_zero <- false;
  frame

let release t (frame : Frame.t) =
  frame.Frame.state <- Frame.Free;
  frame.Frame.pageable <- false;
  frame.Frame.wired <- 0;
  Queue.add frame.Frame.id t.free;
  count t "frame_frees"

let alloc_many t n =
  let rec take acc k =
    if k = 0 then List.rev acc
    else
      match alloc t with
      | frame -> take (frame :: acc) (k - 1)
      | exception Out_of_frames ->
        (* Don't leak the partial batch: hand every frame already taken
           back to the free list before reporting exhaustion. *)
        List.iter (fun f -> release t f) acc;
        raise Out_of_frames
  in
  take [] n

(* Chaos switch for the invariant checker: pretend I/O-deferred page
   deallocation was never implemented, freeing frames devices still
   reference.  The io-desc-safety invariant must catch this. *)
let skip_deferred_dealloc = ref false

let deallocate t (frame : Frame.t) =
  match frame.Frame.state with
  | Frame.Free -> invalid_arg "Phys_mem.deallocate: frame already free"
  | Frame.Zombie -> invalid_arg "Phys_mem.deallocate: frame already a zombie"
  | Frame.Allocated ->
    if Frame.io_referenced frame && not !skip_deferred_dealloc then begin
      frame.Frame.state <- Frame.Zombie;
      t.zombies <- t.zombies + 1;
      count t "deferred_deallocs";
      traced t (fun s ->
          Simcore.Tracer.instant s "frame.deferred_dealloc"
            ~args:[ ("frame", Simcore.Tracer.Int frame.Frame.id) ])
    end
    else release t frame

let ref_input _t (frame : Frame.t) = frame.Frame.input_refs <- frame.Frame.input_refs + 1
let ref_output _t (frame : Frame.t) = frame.Frame.output_refs <- frame.Frame.output_refs + 1

let reclaim_if_due t (frame : Frame.t) =
  if frame.Frame.state = Frame.Zombie && not (Frame.io_referenced frame) then begin
    t.zombies <- t.zombies - 1;
    release t frame
  end

let unref_input t (frame : Frame.t) =
  if frame.Frame.input_refs <= 0 then invalid_arg "Phys_mem.unref_input: no reference";
  frame.Frame.input_refs <- frame.Frame.input_refs - 1;
  reclaim_if_due t frame

let unref_output t (frame : Frame.t) =
  if frame.Frame.output_refs <= 0 then invalid_arg "Phys_mem.unref_output: no reference";
  frame.Frame.output_refs <- frame.Frame.output_refs - 1;
  reclaim_if_due t frame

let adopt t (frame : Frame.t) =
  match frame.Frame.state with
  | Frame.Zombie ->
    t.zombies <- t.zombies - 1;
    frame.Frame.state <- Frame.Allocated
  | Frame.Allocated -> ()
  | Frame.Free -> invalid_arg "Phys_mem.adopt: frame is free"

let zombie_count t = t.zombies
let free_ids t = List.of_seq (Queue.to_seq t.free)
