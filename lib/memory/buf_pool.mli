(** Size-classed pools of reusable byte buffers.

    The data-path hot loops (adapter burst assembly in particular) need
    short-lived scratch buffers of a handful of sizes; allocating a
    fresh [Bytes.t] per message keeps the minor heap churning.  A pool
    recycles buffers in power-of-two size classes: {!take} returns a
    buffer of at least the requested length (its physical length is the
    class size, so callers must track the logical length themselves),
    and {!give} returns it for reuse.

    When {!debug_poison} is set (the fuzzer turns it on), every buffer
    is filled with [0xA5] as it returns to the pool, so any consumer
    that reads recycled bytes it never wrote trips checksum checks
    instead of silently seeing stale payload. *)

type t

val create : ?max_per_class:int -> unit -> t
(** [max_per_class] (default 64) bounds how many idle buffers each size
    class retains; surplus {!give}s are dropped for the GC. *)

val take : t -> len:int -> bytes
(** A buffer of length >= [len] (the smallest power-of-two class, at
    least 64).  Contents are unspecified. *)

val give : t -> bytes -> unit
(** Return a buffer obtained from {!take}.  Buffers whose length is not
    a class size are dropped silently. *)

val debug_poison : bool ref
(** Fill buffers with [0xA5] on {!give} (stale-reuse detector). *)

val hits : t -> int
(** Takes served from the pool without allocating. *)

val misses : t -> int
(** Takes that had to allocate a fresh buffer. *)
