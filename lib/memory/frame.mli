(** Physical page frames.

    A frame carries real backing bytes — all simulated I/O moves data
    through frames, so end-to-end byte correctness is checkable.  Frames
    also carry the per-page input and output reference counts that
    Genie's page referencing scheme maintains (Section 3.1 of the paper):
    a page with a nonzero count has pending DMA and must not be handed to
    another process, and a page with nonzero {e input} count must not be
    paged out (input-disabled pageout, Section 3.2). *)

type state =
  | Free  (** on the free list *)
  | Allocated  (** owned by a memory object or kernel buffer *)
  | Zombie
      (** deallocated while I/O was pending; reclaimed when the last I/O
          reference is dropped (I/O-deferred page deallocation) *)

type t = {
  id : int;
  data : bytes;
  mutable input_refs : int;
  mutable output_refs : int;
  mutable wired : int;
  mutable state : state;
  mutable pageable : bool;  (** on the pageout daemon's candidate list *)
  mutable known_zero : bool;
      (** contents are provably all-zero (never-yet-allocated frames);
          maintained by {!Phys_mem} alone and cleared whenever the frame
          is handed out, so [alloc_zeroed] can skip the O(page_size)
          refill without trusting owners to report their writes *)
}

val io_referenced : t -> bool
(** True if the frame has pending input or output references. *)

val page_size : t -> int

val fill : t -> char -> unit
(** Overwrite the whole frame with one byte (used for zeroing and for
    poisoning freed pages in tests). *)

val blit_in : t -> dst_off:int -> src:bytes -> src_off:int -> len:int -> unit
val blit_out : t -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
val copy_contents : src:t -> dst:t -> unit

val pp : Format.formatter -> t -> unit
