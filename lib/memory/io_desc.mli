(** Scatter/gather I/O descriptors.

    A descriptor is the list of physical segments — (frame, offset,
    length) triples — that page referencing builds for a DMA request.
    The network adapter reads from (gathers) and writes into (scatters)
    descriptors directly at the physical level, bypassing page tables,
    exactly like DMA hardware.  This is what makes the paper's
    input-disabled COW scenario reproducible: DMA input through a
    descriptor modifies memory without generating write faults. *)

type seg = { frame : Frame.t; off : int; len : int }
type t

val of_segs : seg list -> t
val segs : t -> seg list
val total_len : t -> int

val single : Frame.t -> off:int -> len:int -> t

val gather : t -> off:int -> len:int -> bytes
(** Read [len] bytes starting at logical offset [off] of the descriptor. *)

val to_iovec : ?off:int -> ?len:int -> t -> Iovec.t
(** Zero-copy view over the descriptor's byte range ([off] defaults to
    0, [len] to the rest); aliases the underlying frames. *)

val scatter : t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
(** Write bytes into the descriptor starting at logical offset [off]. *)

val frames : t -> Frame.t list
(** Frames covered, in order, without duplicates. *)

val pp : Format.formatter -> t -> unit
