type seg = { frame : Frame.t; off : int; len : int }
type t = { segs : seg list; total_len : int }

let of_segs segs =
  List.iter
    (fun s ->
      if s.off < 0 || s.len < 0 || s.off + s.len > Frame.page_size s.frame then
        invalid_arg "Io_desc.of_segs: segment out of frame bounds")
    segs;
  { segs; total_len = List.fold_left (fun n s -> n + s.len) 0 segs }

let segs t = t.segs
let total_len t = t.total_len
let single frame ~off ~len = of_segs [ { frame; off; len } ]

(* Walk segments, applying [f seg seg_off n] for the byte range
   [off, off+len) of the descriptor, where [seg_off] is the offset within
   the segment and [n] the chunk length. *)
let iter_range t ~off ~len f =
  if off < 0 || len < 0 || off + len > t.total_len then
    invalid_arg "Io_desc: range out of bounds";
  let rec go segs skip remaining =
    if remaining > 0 then
      match segs with
      | [] -> assert false
      | seg :: rest ->
        if skip >= seg.len then go rest (skip - seg.len) remaining
        else begin
          let n = min (seg.len - skip) remaining in
          f seg skip n;
          go rest 0 (remaining - n)
        end
  in
  go t.segs off len

let to_iovec ?(off = 0) ?len t =
  let len = match len with Some l -> l | None -> t.total_len - off in
  if len = 0 then Iovec.empty
  else begin
    let acc = ref [] in
    iter_range t ~off ~len (fun seg seg_off n ->
        acc := Iovec.of_frame seg.frame ~off:(seg.off + seg_off) ~len:n :: !acc);
    Iovec.concat (List.rev !acc)
  end

let gather t ~off ~len =
  let out = Bytes.create len in
  let cursor = ref 0 in
  iter_range t ~off ~len (fun seg seg_off n ->
      Frame.blit_out seg.frame ~src_off:(seg.off + seg_off) ~dst:out
        ~dst_off:!cursor ~len:n;
      cursor := !cursor + n);
  out

let scatter t ~off ~src ~src_off ~len =
  let cursor = ref src_off in
  iter_range t ~off ~len (fun seg seg_off n ->
      Frame.blit_in seg.frame ~dst_off:(seg.off + seg_off) ~src ~src_off:!cursor
        ~len:n;
      cursor := !cursor + n)

let frames t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun seg ->
      if Hashtbl.mem seen seg.frame.Frame.id then None
      else begin
        Hashtbl.add seen seg.frame.Frame.id ();
        Some seg.frame
      end)
    t.segs

let pp fmt t =
  Format.fprintf fmt "desc[%dB:" t.total_len;
  List.iter
    (fun s -> Format.fprintf fmt " #%d+%d/%d" s.frame.Frame.id s.off s.len)
    t.segs;
  Format.fprintf fmt "]"
