type movability =
  | Unmovable
  | Moved_in
  | Moving_in
  | Moving_out
  | Moved_out
  | Weakly_moved_out

type t = {
  id : int;
  start_vpn : int;
  npages : int;
  mutable state : movability;
  mutable obj : Memory_object.t;
  mutable wired : int;
  mutable wire_log : (int * int * Memory.Frame.t list) list;
  mutable valid : bool;
}

let counter = ref 0

let make ~start_vpn ~npages ~state ~obj =
  incr counter;
  {
    id = !counter;
    start_vpn;
    npages;
    state;
    obj;
    wired = 0;
    wire_log = [];
    valid = true;
  }

let contains_vpn t vpn = vpn >= t.start_vpn && vpn < t.start_vpn + t.npages
let end_vpn t = t.start_vpn + t.npages

let movability_name = function
  | Unmovable -> "unmovable"
  | Moved_in -> "moved-in"
  | Moving_in -> "moving-in"
  | Moving_out -> "moving-out"
  | Moved_out -> "moved-out"
  | Weakly_moved_out -> "weakly-moved-out"

let pp fmt t =
  Format.fprintf fmt "region#%d[vpn %d..%d %s%s]" t.id t.start_vpn
    (end_vpn t - 1) (movability_name t.state)
    (if t.valid then "" else " removed")
