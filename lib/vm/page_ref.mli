(** Page referencing (paper Section 3.1).

    Page referencing integrates three activities: building the physical
    scatter/gather descriptor for an I/O request, verifying access rights
    (which faults pages in, and — for input into COW regions — faults in
    private writable copies, see Section 3.3), and updating the per-page
    input/output reference counts plus the per-object input counts.

    The returned handle is what the completion path unreferences; frames
    whose deallocation was deferred during the I/O are reclaimed at that
    point. *)

type direction = For_input | For_output

type handle = {
  desc : Memory.Io_desc.t;
  frames : Memory.Frame.t list;
  objects : (Memory_object.t * int) list;
      (** per-object page counts, for the object input-reference totals *)
  direction : direction;
  space : Address_space.t;
  registry_id : int;
      (** id of this handle's {!Vm_sys.io_view} registry entry *)
  mutable active : bool;
}

val reference :
  Address_space.t -> addr:int -> len:int -> direction -> handle
(** @raise Vm_error.Segmentation_fault or [Unrecoverable_fault] when the
    buffer fails the access-rights check. *)

val reference_region :
  Address_space.t -> Region.t -> len:int -> direction -> handle
(** Kernel-internal referencing of a system-allocated region's pages
    (cached moved-out regions have their application mappings hidden or
    invalidated, so the application-rights check does not apply).  The
    descriptor covers the first [len] bytes of the region; pages are
    materialized from the backing store if needed. *)

val unreference : handle -> unit
(** Drop the references taken by [reference].  Idempotence is rejected:
    unreferencing twice raises [Invalid_argument]. *)

val pages : handle -> int
