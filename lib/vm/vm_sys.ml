type space_view = {
  sv_id : int;
  sv_regions : unit -> Region.t list;
  sv_ptes : unit -> (int * Page_table.pte) list;
  sv_rmap_errors : unit -> string list;
}

type io_dir = Io_input | Io_output

type io_view = {
  io_id : int;
  io_dir : io_dir;
  io_frames : Memory.Frame.t list;
  io_objects : (Memory_object.t * int) list;
}

type t = {
  spec : Machine.Machine_spec.t;
  phys : Memory.Phys_mem.t;
  pageout : Memory.Pageout.t;
  backing : Memory.Backing_store.t;
  frame_owner : (int, Memory_object.t * int) Hashtbl.t;
  mutable unmappers : (Memory.Frame.t -> unit) list;
  mutable spaces : space_view list;
  io_registry : (int, io_view) Hashtbl.t;
  mutable next_io_id : int;
  mutable next_space_id : int;
  reserve_target : int;
  mutable reserve : Memory.Frame.t list;
  mutable trace : Simcore.Tracer.scope option;
}

let page_size t = Memory.Phys_mem.page_size t.phys
let set_trace_scope t scope = t.trace <- Some scope
let register_unmapper t f = t.unmappers <- f :: t.unmappers

let register_space t view = t.spaces <- view :: t.spaces
let space_views t = t.spaces

let register_io t ~dir ~frames ~objects =
  let id = t.next_io_id in
  t.next_io_id <- id + 1;
  Hashtbl.replace t.io_registry id
    { io_id = id; io_dir = dir; io_frames = frames; io_objects = objects };
  id

let forget_io t id = Hashtbl.remove t.io_registry id
let io_views t = Hashtbl.fold (fun _ v acc -> v :: acc) t.io_registry []

let insert_page t obj idx (frame : Memory.Frame.t) =
  Memory_object.set_slot obj idx (Memory_object.Resident frame);
  Hashtbl.replace t.frame_owner frame.Memory.Frame.id (obj, idx);
  if obj.Memory_object.pageable then Memory.Pageout.register t.pageout frame

let detach_frame t (frame : Memory.Frame.t) =
  Hashtbl.remove t.frame_owner frame.Memory.Frame.id;
  Memory.Pageout.unregister t.pageout frame

let remove_page t obj idx =
  match Memory_object.find_local obj idx with
  | None -> ()
  | Some (Memory_object.Resident frame) ->
    detach_frame t frame;
    Memory_object.remove_slot obj idx;
    Memory.Phys_mem.deallocate t.phys frame
  | Some (Memory_object.Swapped slot) ->
    Memory.Backing_store.free t.backing slot;
    Memory_object.remove_slot obj idx

let replace_page t obj idx new_frame =
  match Memory_object.find_local obj idx with
  | Some (Memory_object.Resident old_frame) ->
    detach_frame t old_frame;
    insert_page t obj idx new_frame;
    old_frame
  | Some (Memory_object.Swapped _) | None ->
    invalid_arg "Vm_sys.replace_page: page not resident"

(* The emergency reserve backs fault handling the way a pager's min-free
   watermark does: stocked at boot, untouchable by admission checks (it
   is off the free list, so [Phys_mem.free_frames] never counts it), and
   spent only when a fault finds the free list empty with nothing
   evictable.  Each page materialized from the reserve is itself
   evictable, so single-page fault streams stay sustainable under total
   exhaustion.  The reserve restocks from the free list as memory
   drains. *)
let restock_reserve t =
  let missing = t.reserve_target - List.length t.reserve in
  if missing > 0 then begin
    let spare = Memory.Phys_mem.free_frames t.phys - 1 in
    for _ = 1 to min missing spare do
      t.reserve <- Memory.Phys_mem.alloc t.phys :: t.reserve
    done
  end

let reserve_frames t = t.reserve
let reserve_level t = List.length t.reserve

let take_reserve t =
  match t.reserve with
  | [] -> raise Memory.Phys_mem.Out_of_frames
  | frame :: rest ->
    t.reserve <- rest;
    (match t.trace with
    | None -> ()
    | Some s ->
      if Simcore.Tracer.on s then
        Simcore.Tracer.instant s "mem.emergency"
          ~args:
            [
              ("frame", Simcore.Tracer.Int frame.Memory.Frame.id);
              ("left", Simcore.Tracer.Int (List.length rest));
            ];
      Simcore.Tracer.add_counter s "emergency_allocs");
    frame

let alloc_pressured t =
  restock_reserve t;
  if Memory.Phys_mem.free_frames t.phys = 0 then
    ignore (Memory.Pageout.scan t.pageout ~target:16);
  match Memory.Phys_mem.alloc t.phys with
  | frame -> frame
  | exception Memory.Phys_mem.Out_of_frames -> take_reserve t

let alloc_pressured_zeroed t =
  restock_reserve t;
  if Memory.Phys_mem.free_frames t.phys = 0 then
    ignore (Memory.Pageout.scan t.pageout ~target:16);
  (* Phys_mem skips the zero fill for frames it knows are still zero. *)
  match Memory.Phys_mem.alloc_zeroed t.phys with
  | frame -> frame
  | exception Memory.Phys_mem.Out_of_frames ->
    let frame = take_reserve t in
    Bytes.fill frame.Memory.Frame.data 0
      (Bytes.length frame.Memory.Frame.data) '\x00';
    frame

let materialize t obj idx =
  match Memory_object.find_local obj idx with
  | Some (Memory_object.Resident frame) -> frame
  | Some (Memory_object.Swapped slot) ->
    let frame = alloc_pressured t in
    Memory.Backing_store.page_in t.backing slot frame.Memory.Frame.data;
    insert_page t obj idx frame;
    frame
  | None -> invalid_arg "Vm_sys.materialize: object has no such page"

let evict_frame t (frame : Memory.Frame.t) =
  match Hashtbl.find_opt t.frame_owner frame.Memory.Frame.id with
  | None -> false
  | Some (obj, idx) ->
    let slot = Memory.Backing_store.page_out t.backing frame.Memory.Frame.data in
    List.iter (fun unmap -> unmap frame) t.unmappers;
    Memory_object.set_slot obj idx (Memory_object.Swapped slot);
    Hashtbl.remove t.frame_owner frame.Memory.Frame.id;
    Memory.Phys_mem.deallocate t.phys frame;
    (match t.trace with
    | None -> ()
    | Some s ->
      if Simcore.Tracer.on s then
        Simcore.Tracer.instant s "pageout.evict"
          ~args:[ ("frame", Simcore.Tracer.Int frame.Memory.Frame.id) ];
      Simcore.Tracer.add_counter s "pageouts");
    true

let create spec =
  let t =
    {
      spec;
      phys = Memory.Phys_mem.create spec;
      pageout = Memory.Pageout.create ();
      backing = Memory.Backing_store.create ~page_size:spec.Machine.Machine_spec.page_size;
      frame_owner = Hashtbl.create 256;
      unmappers = [];
      spaces = [];
      io_registry = Hashtbl.create 32;
      next_io_id = 0;
      next_space_id = 0;
      reserve_target = 8;
      reserve = [];
      trace = None;
    }
  in
  Memory.Pageout.set_evict_hook t.pageout (evict_frame t);
  restock_reserve t;
  t

let run_pageout t ~target = Memory.Pageout.scan t.pageout ~target
