(** Application address spaces.

    An address space is a set of regions plus a page table.  Application
    code accesses memory through {!read} and {!write}, which behave like
    loads and stores: protection violations and missing translations go
    through the VM fault handler, which implements

    - {e TCOW} resolution (paper Section 5.1): a write fault on a
      read-only page found in the top memory object copies the page and
      swaps it in the object if its output count is nonzero, and simply
      re-enables writing if the count already dropped to zero;
    - conventional COW faults for pages found down the shadow chain;
    - demand-zero fill and pagein from the backing store;
    - {e region hiding} (Section 4): faults in regions that are not
      unmovable or moved-in are unrecoverable, exactly as if the region
      had been removed.

    The kernel-side entry points (wiring, invalidation, reinstatement,
    page swapping, region caching) do not check protections — they are
    the mechanisms Genie's data-passing operations are built from. *)

type t

val create : Vm_sys.t -> t
val vm : t -> Vm_sys.t
val id : t -> int
val page_size : t -> int

(** {1 Regions} *)

val map_region :
  ?state:Region.movability -> ?pageable:bool -> ?populate:bool -> t ->
  npages:int -> Region.t
(** Allocate a fresh region.  [state] defaults to [Unmovable] (ordinary
    application memory), [pageable] to [true], [populate] to [true]
    (zero-filled pages entered eagerly; pass [false] for demand-zero). *)

val remove_region : t -> Region.t -> unit
(** Unmap and deallocate; page deallocation is I/O-deferred.  The region
    becomes invalid. *)

val find_region : t -> vaddr:int -> Region.t option
val region_of_addr : t -> vaddr:int -> Region.t
(** @raise Vm_error.Segmentation_fault if no region covers the address. *)

val read_alloc_deficit : t -> addr:int -> len:int -> int
(** Number of frames a read of [addr, addr+len) would still have to
    allocate: unmapped pages whose backing page is swapped out or was
    never created.  Pure (no faulting, no allocation) — lets admission
    checks price a copyin or reference walk under frame exhaustion
    before committing to it. *)

val regions : t -> Region.t list
val base_addr : Region.t -> page_size:int -> int

(** {1 Application access (faulting)} *)

val read : t -> addr:int -> len:int -> bytes
val write : t -> addr:int -> bytes -> unit

val write_iov : t -> addr:int -> Memory.Iovec.t -> unit
(** Store a scatter-gather view directly, page chunk by page chunk, with
    the same faulting behaviour and page order as {!write} but without
    materializing the view into an intermediate buffer. *)

val iter_read :
  t -> addr:int -> len:int ->
  (buf_off:int -> Memory.Frame.t -> off:int -> len:int -> unit) -> unit
(** Resolve the range for reading and hand each physical chunk to the
    callback ([buf_off] is the chunk's offset within the range) — the
    zero-copy analogue of {!read}. *)

val touch : t -> addr:int -> len:int -> unit
(** Fault in (for reading) every page of the range. *)

val resolve_read : t -> vpn:int -> Memory.Frame.t
val resolve_write : t -> vpn:int -> Memory.Frame.t

val prot_of : t -> vpn:int -> Prot.t option
(** Current PTE protection, [None] if unmapped (for tests). *)

(** {1 Kernel mechanisms} *)

val make_readonly : t -> Region.t -> first:int -> pages:int -> unit
(** Remove write permission on a page range of a region (TCOW arming).
    [first] is the page index within the region. *)

val invalidate : t -> Region.t -> first:int -> pages:int -> unit
val reinstate : t -> Region.t -> unit
(** Restore read/write access to every mapped page of a region. *)

val wire : t -> Region.t -> unit
val unwire : t -> Region.t -> unit

val wire_range : t -> Region.t -> first:int -> pages:int -> unit
(** Wire only a page range of a region (the pages an I/O buffer
    occupies); counts nest with other overlapping wirings. *)

val unwire_range : t -> Region.t -> first:int -> pages:int -> unit

val swap_into_region :
  t -> Region.t -> page:int -> Memory.Frame.t -> Memory.Frame.t option
(** [swap_into_region t r ~page f] makes [f] the backing frame of the
    region page, with write access, returning the displaced frame (now
    owned by the caller), or [None] if the page was not resident. *)

val map_object_pages : t -> Region.t -> unit
(** Enter read-write translations for every resident page of the
    region's object ("map region" after a move-input fill). *)

val ensure_region : t -> Region.t -> frames:Memory.Frame.t list -> Region.t
(** Region check: return the region if it is still present; if the
    application removed it during I/O, build a replacement region over
    the same pages (resurrecting frames whose deallocation was deferred),
    so the location returned to the application stays valid. *)

val clone_cow : t -> t
(** Fork-style clone.  Regions whose objects have pending input
    references are copied physically ({e input-disabled COW},
    Section 3.3); all others are shared copy-on-write through shadow
    objects, with both parent and child downgraded to read-only. *)

(** {1 Region caching (weak move / emulated move)} *)

val cache_region : t -> Region.t -> unit
(** Enqueue a [Moved_out] or [Weakly_moved_out] region on the matching
    per-address-space reuse queue. *)

val dequeue_cached : t -> kind:Region.movability -> npages:int -> Region.t option
(** Take a cached region of the exact size off the queue ([kind] selects
    which queue); invalid (removed) regions are skipped and dropped. *)

val destroy : t -> unit
(** Process exit: remove every region (deallocation is I/O-deferred). *)
