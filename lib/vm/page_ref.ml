type direction = For_input | For_output

type handle = {
  desc : Memory.Io_desc.t;
  frames : Memory.Frame.t list;
  objects : (Memory_object.t * int) list;
  direction : direction;
  space : Address_space.t;
  registry_id : int;
  mutable active : bool;
}

(* Enter the handle into the VM system's in-flight I/O registry so the
   invariant checker can audit reference counts and descriptor safety. *)
let registered space direction ~frames ~objects =
  Vm_sys.register_io (Address_space.vm space)
    ~dir:
      (match direction with
      | For_input -> Vm_sys.Io_input
      | For_output -> Vm_sys.Io_output)
    ~frames ~objects

let reference space ~addr ~len direction =
  let psize = Address_space.page_size space in
  let phys = (Address_space.vm space).Vm_sys.phys in
  let segs = ref [] and frames = ref [] and objects = ref [] in
  let note_object obj =
    match List.assq_opt obj !objects with
    | Some _ ->
      objects := List.map (fun (o, n) -> if o == obj then (o, n + 1) else (o, n)) !objects
    | None -> objects := (obj, 1) :: !objects
  in
  let cursor = ref addr and remaining = ref len in
  while !remaining > 0 do
    let vpn = !cursor / psize and off = !cursor mod psize in
    let n = min !remaining (psize - off) in
    let frame =
      match direction with
      | For_output -> Address_space.resolve_read space ~vpn
      | For_input -> Address_space.resolve_write space ~vpn
    in
    (match direction with
    | For_output -> Memory.Phys_mem.ref_output phys frame
    | For_input ->
      Memory.Phys_mem.ref_input phys frame;
      let region = Address_space.region_of_addr space ~vaddr:!cursor in
      let obj = region.Region.obj in
      obj.Memory_object.input_refs <- obj.Memory_object.input_refs + 1;
      note_object obj);
    segs := { Memory.Io_desc.frame; off; len = n } :: !segs;
    frames := frame :: !frames;
    cursor := !cursor + n;
    remaining := !remaining - n
  done;
  let frames = List.rev !frames in
  {
    desc = Memory.Io_desc.of_segs (List.rev !segs);
    frames;
    objects = !objects;
    direction;
    space;
    registry_id = registered space direction ~frames ~objects:!objects;
    active = true;
  }

let reference_region space (region : Region.t) ~len direction =
  let psize = Address_space.page_size space in
  let vm = Address_space.vm space in
  let phys = vm.Vm_sys.phys in
  let npages = (len + psize - 1) / psize in
  if npages > region.Region.npages then
    invalid_arg "Page_ref.reference_region: length exceeds region";
  let obj = region.Region.obj in
  let segs = ref [] and frames = ref [] in
  for i = 0 to npages - 1 do
    let frame = Vm_sys.materialize vm obj i in
    (match direction with
    | For_output -> Memory.Phys_mem.ref_output phys frame
    | For_input -> Memory.Phys_mem.ref_input phys frame);
    let seg_len = min psize (len - (i * psize)) in
    segs := { Memory.Io_desc.frame; off = 0; len = seg_len } :: !segs;
    frames := frame :: !frames
  done;
  let objects =
    match direction with
    | For_input ->
      obj.Memory_object.input_refs <- obj.Memory_object.input_refs + npages;
      [ (obj, npages) ]
    | For_output -> []
  in
  let frames = List.rev !frames in
  {
    desc = Memory.Io_desc.of_segs (List.rev !segs);
    frames;
    objects;
    direction;
    space;
    registry_id = registered space direction ~frames ~objects;
    active = true;
  }

let unreference handle =
  if not handle.active then invalid_arg "Page_ref.unreference: already dropped";
  handle.active <- false;
  Vm_sys.forget_io (Address_space.vm handle.space) handle.registry_id;
  let phys = (Address_space.vm handle.space).Vm_sys.phys in
  List.iter
    (fun frame ->
      match handle.direction with
      | For_output -> Memory.Phys_mem.unref_output phys frame
      | For_input -> Memory.Phys_mem.unref_input phys frame)
    handle.frames;
  List.iter
    (fun (obj, n) -> obj.Memory_object.input_refs <- obj.Memory_object.input_refs - n)
    handle.objects

let pages handle = List.length handle.frames
