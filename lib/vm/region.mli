(** Virtual memory regions and their movability states.

    The paper implements system-allocated I/O buffers as regions marked
    {e moved in}; regions that are not system-allocated (heap, stack,
    statically allocated buffers) are {e unmovable}.  The transitional
    states ([Moving_out], [Moving_in]) keep virtual addresses reserved
    while I/O is in flight so errors can be recovered gracefully;
    [Moved_out] is the region-hiding state of emulated move output, and
    [Weakly_moved_out] is the region-caching state of (emulated) weak
    move. *)

type movability =
  | Unmovable
  | Moved_in
  | Moving_in
  | Moving_out
  | Moved_out  (** hidden: pages invalidated but still allocated *)
  | Weakly_moved_out  (** cached for reuse: pages remain mapped *)

type t = {
  id : int;
  start_vpn : int;
  npages : int;
  mutable state : movability;
  mutable obj : Memory_object.t;
  mutable wired : int;
  mutable wire_log : (int * int * Memory.Frame.t list) list;
      (** one entry per active wiring, [(first, pages, frames)]: the
          exact frames that wiring pinned.  Unwire decrements precisely
          its own entry's frames — residency can change mid-flight (COW
          and TCOW breaks, swap-ins), so a fresh residency snapshot at
          unwire time would decrement frames that were never wired.  A
          whole-region wiring logs [(-1, -1, frames)]. *)
  mutable valid : bool;  (** false once removed from its address space *)
}

val make :
  start_vpn:int -> npages:int -> state:movability -> obj:Memory_object.t -> t

val contains_vpn : t -> int -> bool
val end_vpn : t -> int
(** One past the last virtual page. *)

val movability_name : movability -> string
val pp : Format.formatter -> t -> unit
