(** Per-address-space page tables.

    Maps virtual page numbers to (frame, protection) entries and keeps a
    reverse map from frame id to the virtual pages mapping it, which the
    pageout daemon's unmap step needs. *)

type pte = { mutable frame : Memory.Frame.t; mutable prot : Prot.t }
type t

val create : unit -> t

val find : t -> int -> pte option
(** Lookup by virtual page number. *)

val map : t -> vpn:int -> frame:Memory.Frame.t -> prot:Prot.t -> unit
(** Enter or replace a translation. *)

val set_prot : t -> vpn:int -> Prot.t -> unit
(** @raise Invalid_argument if the page is not mapped. *)

val replace_frame : t -> vpn:int -> Memory.Frame.t -> unit
(** Point an existing entry at a different frame (page swapping). *)

val unmap : t -> vpn:int -> unit

val vpns_of_frame : t -> Memory.Frame.t -> int list
(** Virtual pages currently mapping the frame, ascending.  Backed by a
    per-frame hash set, so lookup is O(set size), not O(mappings). *)

val entry_count : t -> int

val iter : t -> (vpn:int -> pte -> unit) -> unit
(** Visit every translation (unspecified order; for checkers and tests). *)

val check_rmap : t -> string list
(** Consistency audit of the reverse map against the translations: every
    entry present in its frame's set, every set pair backed by a live
    entry, no empty sets, totals equal {!entry_count}.  Returns
    human-readable violation strings (empty = consistent). *)

val unsafe_rmap_drop : t -> vpn:int -> frame_id:int -> unit
(** Test-only corruption hook: silently drop one reverse-map pair so
    checker tests can prove {!check_rmap} notices.  Never call outside
    tests. *)
