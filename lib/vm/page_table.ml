type pte = { mutable frame : Memory.Frame.t; mutable prot : Prot.t }

type t = {
  entries : (int, pte) Hashtbl.t;
  rmap : (int, int list ref) Hashtbl.t;  (* frame id -> vpns *)
}

let create () = { entries = Hashtbl.create 64; rmap = Hashtbl.create 64 }

let find t vpn = Hashtbl.find_opt t.entries vpn

let rmap_add t frame_id vpn =
  match Hashtbl.find_opt t.rmap frame_id with
  | Some l -> if not (List.mem vpn !l) then l := vpn :: !l
  | None -> Hashtbl.add t.rmap frame_id (ref [ vpn ])

let rmap_remove t frame_id vpn =
  match Hashtbl.find_opt t.rmap frame_id with
  | None -> ()
  | Some l ->
    l := List.filter (fun v -> v <> vpn) !l;
    if !l = [] then Hashtbl.remove t.rmap frame_id

let map t ~vpn ~frame ~prot =
  (match Hashtbl.find_opt t.entries vpn with
  | Some pte ->
    rmap_remove t pte.frame.Memory.Frame.id vpn;
    pte.frame <- frame;
    pte.prot <- prot
  | None -> Hashtbl.add t.entries vpn { frame; prot });
  rmap_add t frame.Memory.Frame.id vpn

let required t vpn =
  match find t vpn with
  | Some pte -> pte
  | None -> invalid_arg "Page_table: virtual page not mapped"

let set_prot t ~vpn prot = (required t vpn).prot <- prot

let replace_frame t ~vpn frame =
  let pte = required t vpn in
  rmap_remove t pte.frame.Memory.Frame.id vpn;
  pte.frame <- frame;
  rmap_add t frame.Memory.Frame.id vpn

let unmap t ~vpn =
  match find t vpn with
  | None -> ()
  | Some pte ->
    rmap_remove t pte.frame.Memory.Frame.id vpn;
    Hashtbl.remove t.entries vpn

let vpns_of_frame t (frame : Memory.Frame.t) =
  match Hashtbl.find_opt t.rmap frame.Memory.Frame.id with
  | Some l -> !l
  | None -> []

let entry_count t = Hashtbl.length t.entries

let iter t f = Hashtbl.iter (fun vpn pte -> f ~vpn pte) t.entries
