type pte = { mutable frame : Memory.Frame.t; mutable prot : Prot.t }

type t = {
  entries : (int, pte) Hashtbl.t;
  rmap : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* frame id -> vpn set *)
}

let create () = { entries = Hashtbl.create 64; rmap = Hashtbl.create 64 }

let find t vpn = Hashtbl.find_opt t.entries vpn

let rmap_add t frame_id vpn =
  match Hashtbl.find_opt t.rmap frame_id with
  | Some set -> Hashtbl.replace set vpn ()
  | None ->
    let set = Hashtbl.create 4 in
    Hashtbl.add set vpn ();
    Hashtbl.add t.rmap frame_id set

let rmap_remove t frame_id vpn =
  match Hashtbl.find_opt t.rmap frame_id with
  | None -> ()
  | Some set ->
    Hashtbl.remove set vpn;
    if Hashtbl.length set = 0 then Hashtbl.remove t.rmap frame_id

let map t ~vpn ~frame ~prot =
  (match Hashtbl.find_opt t.entries vpn with
  | Some pte ->
    rmap_remove t pte.frame.Memory.Frame.id vpn;
    pte.frame <- frame;
    pte.prot <- prot
  | None -> Hashtbl.add t.entries vpn { frame; prot });
  rmap_add t frame.Memory.Frame.id vpn

let required t vpn =
  match find t vpn with
  | Some pte -> pte
  | None -> invalid_arg "Page_table: virtual page not mapped"

let set_prot t ~vpn prot = (required t vpn).prot <- prot

let replace_frame t ~vpn frame =
  let pte = required t vpn in
  rmap_remove t pte.frame.Memory.Frame.id vpn;
  pte.frame <- frame;
  rmap_add t frame.Memory.Frame.id vpn

let unmap t ~vpn =
  match find t vpn with
  | None -> ()
  | Some pte ->
    rmap_remove t pte.frame.Memory.Frame.id vpn;
    Hashtbl.remove t.entries vpn

let vpns_of_frame t (frame : Memory.Frame.t) =
  match Hashtbl.find_opt t.rmap frame.Memory.Frame.id with
  | Some set -> List.sort compare (Hashtbl.fold (fun vpn () acc -> vpn :: acc) set [])
  | None -> []

let entry_count t = Hashtbl.length t.entries

let iter t f = Hashtbl.iter (fun vpn pte -> f ~vpn pte) t.entries

let check_rmap t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Every translation must appear in its frame's reverse-map set. *)
  Hashtbl.iter
    (fun vpn (pte : pte) ->
      let fid = pte.frame.Memory.Frame.id in
      match Hashtbl.find_opt t.rmap fid with
      | Some set when Hashtbl.mem set vpn -> ()
      | Some _ -> err "vpn %d maps frame #%d but is missing from its rmap set" vpn fid
      | None -> err "vpn %d maps frame #%d which has no rmap set" vpn fid)
    t.entries;
  (* Every reverse-map pair must correspond to a live translation, sets
     must be non-empty, and the totals must agree with entry_count. *)
  let pairs = ref 0 in
  Hashtbl.iter
    (fun fid set ->
      if Hashtbl.length set = 0 then err "frame #%d has an empty rmap set" fid;
      Hashtbl.iter
        (fun vpn () ->
          incr pairs;
          match Hashtbl.find_opt t.entries vpn with
          | Some pte when pte.frame.Memory.Frame.id = fid -> ()
          | Some pte ->
            err "rmap says frame #%d maps vpn %d but the entry points at #%d" fid
              vpn pte.frame.Memory.Frame.id
          | None -> err "rmap says frame #%d maps vpn %d but vpn is unmapped" fid vpn)
        set)
    t.rmap;
  if !pairs <> Hashtbl.length t.entries then
    err "rmap holds %d pairs but the table has %d entries" !pairs
      (Hashtbl.length t.entries);
  List.rev !errors

let unsafe_rmap_drop t ~vpn ~frame_id = rmap_remove t frame_id vpn
