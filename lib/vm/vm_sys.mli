(** The VM system of one simulated host.

    Owns physical memory, the backing store, the pageout daemon and the
    frame-ownership registry (frame -> (object, page index)) that the
    eviction path needs.  Address spaces register an unmap callback here
    so that pageout can tear down translations. *)

type space_view = {
  sv_id : int;
  sv_regions : unit -> Region.t list;
  sv_ptes : unit -> (int * Page_table.pte) list;  (** (vpn, pte) pairs *)
  sv_rmap_errors : unit -> string list;
      (** {!Page_table.check_rmap} over the space's table: reverse-map
          vs translation consistency violations, empty when clean *)
}
(** Introspection window onto one address space, registered by
    {!Address_space.create}.  The invariant checker walks these instead of
    depending on the (higher-level) address-space module. *)

type io_dir = Io_input | Io_output

type io_view = {
  io_id : int;
  io_dir : io_dir;
  io_frames : Memory.Frame.t list;
      (** referenced frames, with multiplicity, in buffer order *)
  io_objects : (Memory_object.t * int) list;
      (** per-object page counts charged to the object input totals *)
}
(** One live page-referencing handle (an I/O in flight).  Registered by
    [Page_ref.reference]/[reference_region], withdrawn at unreference, so
    the registry is exactly the set of scatter/gather descriptors a
    device may still read or write. *)

type t = {
  spec : Machine.Machine_spec.t;
  phys : Memory.Phys_mem.t;
  pageout : Memory.Pageout.t;
  backing : Memory.Backing_store.t;
  frame_owner : (int, Memory_object.t * int) Hashtbl.t;
  mutable unmappers : (Memory.Frame.t -> unit) list;
  mutable spaces : space_view list;
  io_registry : (int, io_view) Hashtbl.t;
  mutable next_io_id : int;
  mutable next_space_id : int;
      (** address-space numbering, per VM system so trace labels replay
          bit-identically across runs in one process *)
  reserve_target : int;
  mutable reserve : Memory.Frame.t list;
      (** emergency frame reserve for fault handling (a pager min-free
          watermark): off the free list, invisible to admission checks,
          spent only when a fault finds memory exhausted with nothing
          evictable, restocked as memory drains *)
  mutable trace : Simcore.Tracer.scope option;
      (** typed trace scope for VM-layer events (faults, TCOW breaks,
          pageout, region hiding); installed by the host, [None] until
          then *)
}

val create : Machine.Machine_spec.t -> t
val page_size : t -> int

val set_trace_scope : t -> Simcore.Tracer.scope -> unit

val register_unmapper : t -> (Memory.Frame.t -> unit) -> unit

val register_space : t -> space_view -> unit
val space_views : t -> space_view list

val register_io :
  t ->
  dir:io_dir ->
  frames:Memory.Frame.t list ->
  objects:(Memory_object.t * int) list ->
  int
(** Returns the registry id to pass to {!forget_io}. *)

val forget_io : t -> int -> unit
val io_views : t -> io_view list

val insert_page : t -> Memory_object.t -> int -> Memory.Frame.t -> unit
(** Enter a resident page into an object: updates the slot, the ownership
    registry and (for pageable objects) the pageout candidate list. *)

val remove_page : t -> Memory_object.t -> int -> unit
(** Drop a page from an object.  A resident frame is deallocated (which
    defers to zombie state if I/O is pending); a swapped slot is freed. *)

val replace_page : t -> Memory_object.t -> int -> Memory.Frame.t -> Memory.Frame.t
(** [replace_page t obj idx new_frame] swaps the resident page of [idx]
    for [new_frame] and returns the old frame {e without} deallocating it
    — the caller decides its fate (TCOW deallocates it after I/O; input
    page swapping hands it to the system buffer). *)

val materialize : t -> Memory_object.t -> int -> Memory.Frame.t
(** Resident frame for the object page, paging it in from the backing
    store if necessary.  @raise Invalid_argument if the object has no such
    page. *)

val evict_frame : t -> Memory.Frame.t -> bool
(** Page a frame out: copy to backing store, unmap everywhere, mark the
    object slot swapped, release the frame.  Returns [false] if the frame
    belongs to no object.  Installed as the pageout daemon's hook. *)

val run_pageout : t -> target:int -> int

val alloc_pressured : t -> Memory.Frame.t
(** Allocate a frame, waking the pageout daemon under memory pressure:
    if the free list is empty, evict pageable frames and retry, and as a
    last resort draw on the emergency reserve (traced as
    [mem.emergency], counter [emergency_allocs]).
    @raise Memory.Phys_mem.Out_of_frames when nothing can be evicted
    and the reserve itself is exhausted (all remaining memory is wired,
    kernel-owned or I/O-referenced). *)

val alloc_pressured_zeroed : t -> Memory.Frame.t
(** {!alloc_pressured} with all-zero contents; frames the physical layer
    knows are still zero skip the O(page_size) refill. *)

val reserve_frames : t -> Memory.Frame.t list
(** Current emergency-reserve frames (for the invariant checker, which
    counts the reserve as a frame owner). *)

val reserve_level : t -> int
