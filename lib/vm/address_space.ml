type t = {
  id : int;
  vm : Vm_sys.t;
  pt : Page_table.t;
  mutable region_list : Region.t list;  (* sorted by start_vpn *)
  (* Region-lookup fast path: a sorted array rebuilt lazily after any
     region_list mutation, searched by bisection, fronted by a last-hit
     cache (lookups are heavily clustered: iter_pages resolves the same
     region once per page). *)
  mutable region_arr : Region.t array;
  mutable arr_dirty : bool;
  mutable last_hit : Region.t option;
  moved_out_q : Region.t Queue.t;
  weak_q : Region.t Queue.t;
  mutable next_vpn : int;
}

let create vm =
  vm.Vm_sys.next_space_id <- vm.Vm_sys.next_space_id + 1;
  let t =
    {
      id = vm.Vm_sys.next_space_id;
      vm;
      pt = Page_table.create ();
      region_list = [];
      region_arr = [||];
      arr_dirty = false;
      last_hit = None;
      moved_out_q = Queue.create ();
      weak_q = Queue.create ();
      next_vpn = 16;  (* leave a null guard area *)
    }
  in
  Vm_sys.register_unmapper vm (fun frame ->
      List.iter (fun vpn -> Page_table.unmap t.pt ~vpn) (Page_table.vpns_of_frame t.pt frame));
  Vm_sys.register_space vm
    {
      Vm_sys.sv_id = t.id;
      sv_regions = (fun () -> t.region_list);
      sv_ptes =
        (fun () ->
          let acc = ref [] in
          Page_table.iter t.pt (fun ~vpn pte -> acc := (vpn, pte) :: !acc);
          !acc);
      sv_rmap_errors = (fun () -> Page_table.check_rmap t.pt);
    };
  t

let vm t = t.vm
let id t = t.id

(* Typed tracing: the scope lives on the VM system (installed by the
   host); [traced] short-circuits to a no-op while tracing is off. *)
let traced t f =
  match t.vm.Vm_sys.trace with
  | Some s when Simcore.Tracer.on s -> f s
  | _ -> ()

(* Counters also accumulate in count-only mode ([add_counter]
   self-guards), so they stay out of the [traced] event closures. *)
let count t name =
  match t.vm.Vm_sys.trace with
  | Some s -> Simcore.Tracer.add_counter s name
  | None -> ()
let page_size t = Vm_sys.page_size t.vm
let regions t = t.region_list

let vpn_of_addr t addr = addr / page_size t
let base_addr (r : Region.t) ~page_size = r.Region.start_vpn * page_size

(* {1 Region lookup} *)

let invalidate_lookup t =
  t.arr_dirty <- true;
  t.last_hit <- None

let region_of_vpn t vpn =
  match t.last_hit with
  | Some r when r.Region.valid && Region.contains_vpn r vpn -> Some r
  | _ ->
    if t.arr_dirty then begin
      t.region_arr <- Array.of_list t.region_list;
      t.arr_dirty <- false
    end;
    let arr = t.region_arr in
    (* Bisect for the region with the greatest start_vpn <= vpn; the list
       is sorted by construction (map_region/ensure_region allocate at
       monotonically increasing next_vpn). *)
    let lo = ref 0 and hi = ref (Array.length arr - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let r = arr.(mid) in
      if r.Region.start_vpn <= vpn then begin
        found := Some r;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    (match !found with
    | Some r when Region.contains_vpn r vpn ->
      t.last_hit <- Some r;
      Some r
    | Some _ | None -> None)

(* {1 Regions} *)

let map_region ?(state = Region.Unmovable) ?(pageable = true) ?(populate = true)
    t ~npages =
  if npages <= 0 then invalid_arg "Address_space.map_region: npages";
  let obj = Memory_object.create ~pageable () in
  let region = Region.make ~start_vpn:t.next_vpn ~npages ~state ~obj in
  t.next_vpn <- t.next_vpn + npages + 1 (* one-page guard gap *);
  t.region_list <- t.region_list @ [ region ];
  invalidate_lookup t;
  if populate then
    for i = 0 to npages - 1 do
      let frame = Vm_sys.alloc_pressured_zeroed t.vm in
      Vm_sys.insert_page t.vm obj i frame;
      Page_table.map t.pt ~vpn:(region.Region.start_vpn + i) ~frame
        ~prot:Prot.Read_write
    done;
  region

let remove_region t (region : Region.t) =
  if not region.Region.valid then
    invalid_arg "Address_space.remove_region: region already removed";
  for i = 0 to region.Region.npages - 1 do
    Page_table.unmap t.pt ~vpn:(region.Region.start_vpn + i);
    Vm_sys.remove_page t.vm region.Region.obj i
  done;
  region.Region.valid <- false;
  t.region_list <- List.filter (fun r -> r != region) t.region_list;
  invalidate_lookup t

let find_region t ~vaddr = region_of_vpn t (vpn_of_addr t vaddr)

let region_of_addr t ~vaddr =
  match find_region t ~vaddr with
  | Some r -> r
  | None -> Vm_error.segfault "space %d: address %#x not in any region" t.id vaddr

(* Frames a read of [addr, addr+len) would still have to allocate:
   unmapped pages whose chain page is swapped out or absent (the two
   arms of [handle_read_fault] that call the allocator).  Pure — no
   faulting, no mapping, no allocation — so admission checks can price
   a copyin/reference walk before starting it under memory pressure. *)
let read_alloc_deficit t ~addr ~len =
  if len <= 0 then 0
  else begin
    let lo = vpn_of_addr t addr and hi = vpn_of_addr t (addr + len - 1) in
    let n = ref 0 in
    for vpn = lo to hi do
      match Page_table.find t.pt vpn with
      | Some _ -> ()
      | None -> (
        match region_of_vpn t vpn with
        | None -> ()
        | Some r -> (
          let idx = vpn - r.Region.start_vpn in
          match Memory_object.find_chain r.Region.obj idx with
          | Some (owner, _) -> (
            match Memory_object.find_local owner idx with
            | Some (Memory_object.Resident _) -> ()
            | Some (Memory_object.Swapped _) | None -> incr n)
          | None -> incr n))
    done;
    !n
  end

(* {1 Fault handling} *)

let recoverable (r : Region.t) =
  match r.Region.state with
  | Region.Unmovable | Region.Moved_in -> true
  | Region.Moving_in | Region.Moving_out | Region.Moved_out
  | Region.Weakly_moved_out -> false

let fault_region t vpn =
  match region_of_vpn t vpn with
  | None -> Vm_error.segfault "space %d: fault at vpn %d outside regions" t.id vpn
  | Some r when recoverable r -> r
  | Some r ->
    Vm_error.unrecoverable "space %d: fault at vpn %d in %s region" t.id vpn
      (Region.movability_name r.Region.state)

(* Allocating under pressure may trigger a pageout scan; pin the source
   frame for the duration so the scan cannot evict (and recycle) the very
   page being copied. *)
let alloc_for_copy t (src : Memory.Frame.t) =
  src.Memory.Frame.wired <- src.Memory.Frame.wired + 1;
  Fun.protect
    ~finally:(fun () -> src.Memory.Frame.wired <- src.Memory.Frame.wired - 1)
    (fun () -> Vm_sys.alloc_pressured t.vm)

(* Copy a chain page into the top object (conventional COW resolution). *)
let cow_copy t (region : Region.t) idx owner =
  let src = Vm_sys.materialize t.vm owner idx in
  let dst = alloc_for_copy t src in
  Memory.Frame.copy_contents ~src ~dst;
  Vm_sys.insert_page t.vm region.Region.obj idx dst;
  count t "cow_breaks";
  traced t (fun s ->
      Simcore.Tracer.instant s "cow.copy"
        ~args:
          [
            ("space", Simcore.Tracer.Int t.id);
            ("vpn", Simcore.Tracer.Int (region.Region.start_vpn + idx));
          ]);
  dst

let handle_read_fault t vpn =
  count t "faults";
  traced t (fun s ->
      Simcore.Tracer.instant s "fault.read"
        ~args:
          [
            ("space", Simcore.Tracer.Int t.id); ("vpn", Simcore.Tracer.Int vpn);
          ]);
  let region = fault_region t vpn in
  let idx = vpn - region.Region.start_vpn in
  let obj = region.Region.obj in
  match Memory_object.find_chain obj idx with
  | Some (owner, _) when owner == obj ->
    let frame = Vm_sys.materialize t.vm obj idx in
    Page_table.map t.pt ~vpn ~frame ~prot:Prot.Read_write;
    frame
  | Some (owner, _) ->
    (* Shared with the shadow chain: map read-only, copy on write later. *)
    let frame = Vm_sys.materialize t.vm owner idx in
    Page_table.map t.pt ~vpn ~frame ~prot:Prot.Read_only;
    frame
  | None ->
    let frame = Vm_sys.alloc_pressured_zeroed t.vm in
    Vm_sys.insert_page t.vm obj idx frame;
    Page_table.map t.pt ~vpn ~frame ~prot:Prot.Read_write;
    frame

let handle_write_fault t vpn =
  count t "faults";
  traced t (fun s ->
      Simcore.Tracer.instant s "fault.write"
        ~args:
          [
            ("space", Simcore.Tracer.Int t.id); ("vpn", Simcore.Tracer.Int vpn);
          ]);
  let region = fault_region t vpn in
  let idx = vpn - region.Region.start_vpn in
  let obj = region.Region.obj in
  match Page_table.find t.pt vpn with
  | Some pte when pte.Page_table.prot = Prot.Read_only -> begin
    match Memory_object.find_local obj idx with
    | Some (Memory_object.Resident frame) when frame == pte.Page_table.frame ->
      (* Page present in the top object: this is the TCOW case. *)
      if frame.Memory.Frame.output_refs > 0 then begin
        count t "cow_breaks";
        traced t (fun s ->
            Simcore.Tracer.instant s "tcow.break"
              ~args:
                [
                  ("space", Simcore.Tracer.Int t.id);
                  ("vpn", Simcore.Tracer.Int vpn);
                ]);
        let fresh = alloc_for_copy t frame in
        Memory.Frame.copy_contents ~src:frame ~dst:fresh;
        let displaced = Vm_sys.replace_page t.vm obj idx fresh in
        (* The displaced frame keeps carrying the pending output; it is
           reclaimed when the output unreferences it.  Any active wiring
           that pinned it is logged on the region and will unwire the
           displaced frame itself, not the replacement. *)
        Memory.Phys_mem.deallocate t.vm.Vm_sys.phys displaced;
        Page_table.map t.pt ~vpn ~frame:fresh ~prot:Prot.Read_write;
        fresh
      end
      else begin
        (* Output already completed: just re-enable writing, no copy. *)
        pte.Page_table.prot <- Prot.Read_write;
        pte.Page_table.frame
      end
    | Some _ | None ->
      (* Page mapped from the shadow chain: conventional COW fault. *)
      let owner =
        match Memory_object.find_chain obj idx with
        | Some (owner, _) -> owner
        | None -> assert false
      in
      let fresh = cow_copy t region idx owner in
      Page_table.map t.pt ~vpn ~frame:fresh ~prot:Prot.Read_write;
      fresh
  end
  | Some pte when pte.Page_table.prot = Prot.No_access ->
    Vm_error.unrecoverable "space %d: write to invalidated page at vpn %d" t.id vpn
  | Some pte -> pte.Page_table.frame (* already writable: no fault *)
  | None -> begin
    match Memory_object.find_chain obj idx with
    | Some (owner, _) when owner == obj ->
      let frame = Vm_sys.materialize t.vm obj idx in
      Page_table.map t.pt ~vpn ~frame ~prot:Prot.Read_write;
      frame
    | Some (owner, _) ->
      let fresh = cow_copy t region idx owner in
      Page_table.map t.pt ~vpn ~frame:fresh ~prot:Prot.Read_write;
      fresh
    | None ->
      let frame = Vm_sys.alloc_pressured_zeroed t.vm in
      Vm_sys.insert_page t.vm obj idx frame;
      Page_table.map t.pt ~vpn ~frame ~prot:Prot.Read_write;
      frame
  end

let resolve_read t ~vpn =
  match Page_table.find t.pt vpn with
  | Some pte when Prot.allows_read pte.Page_table.prot -> pte.Page_table.frame
  | Some _ ->
    (* No_access: either hidden region or invalidated page. *)
    ignore (fault_region t vpn);
    Vm_error.unrecoverable "space %d: read of invalidated page at vpn %d" t.id vpn
  | None -> handle_read_fault t vpn

let resolve_write t ~vpn =
  match Page_table.find t.pt vpn with
  | Some pte when Prot.allows_write pte.Page_table.prot -> pte.Page_table.frame
  | Some _ | None -> handle_write_fault t vpn

let prot_of t ~vpn =
  match Page_table.find t.pt vpn with
  | Some pte -> Some pte.Page_table.prot
  | None -> None

(* {1 Application loads and stores} *)

let iter_pages t ~addr ~len f =
  if len < 0 then invalid_arg "Address_space: negative length";
  let psize = page_size t in
  let cursor = ref addr and remaining = ref len and done_ = ref 0 in
  while !remaining > 0 do
    let vpn = !cursor / psize and off = !cursor mod psize in
    let n = min !remaining (psize - off) in
    f ~vpn ~off ~buf_off:!done_ ~len:n;
    cursor := !cursor + n;
    remaining := !remaining - n;
    done_ := !done_ + n
  done

let read t ~addr ~len =
  let out = Bytes.create len in
  iter_pages t ~addr ~len (fun ~vpn ~off ~buf_off ~len ->
      let frame = resolve_read t ~vpn in
      Memory.Frame.blit_out frame ~src_off:off ~dst:out ~dst_off:buf_off ~len);
  out

let write t ~addr src =
  iter_pages t ~addr ~len:(Bytes.length src) (fun ~vpn ~off ~buf_off ~len ->
      let frame = resolve_write t ~vpn in
      Memory.Frame.blit_in frame ~dst_off:off ~src ~src_off:buf_off ~len)

let write_iov t ~addr iov =
  let cursor = ref addr in
  Memory.Iovec.iter_slices iov (fun src ~off:src_base ~len:slice_len ->
      iter_pages t ~addr:!cursor ~len:slice_len (fun ~vpn ~off ~buf_off ~len ->
          let frame = resolve_write t ~vpn in
          Memory.Frame.blit_in frame ~dst_off:off ~src
            ~src_off:(src_base + buf_off) ~len);
      cursor := !cursor + slice_len)

let iter_read t ~addr ~len f =
  iter_pages t ~addr ~len (fun ~vpn ~off ~buf_off ~len ->
      let frame = resolve_read t ~vpn in
      f ~buf_off frame ~off ~len)

let touch t ~addr ~len =
  iter_pages t ~addr ~len (fun ~vpn ~off:_ ~buf_off:_ ~len:_ ->
      ignore (resolve_read t ~vpn))

(* {1 Kernel mechanisms} *)

let iter_region_vpns (region : Region.t) f =
  for i = 0 to region.Region.npages - 1 do
    f (region.Region.start_vpn + i)
  done

let page_range_check (region : Region.t) ~first ~pages =
  if first < 0 || pages < 0 || first + pages > region.Region.npages then
    invalid_arg "Address_space: page range outside region"

let make_readonly t region ~first ~pages =
  page_range_check region ~first ~pages;
  for i = first to first + pages - 1 do
    let vpn = region.Region.start_vpn + i in
    match Page_table.find t.pt vpn with
    | Some pte when pte.Page_table.prot = Prot.Read_write ->
      pte.Page_table.prot <- Prot.Read_only
    | Some _ | None -> ()
  done

let invalidate t region ~first ~pages =
  page_range_check region ~first ~pages;
  traced t (fun s ->
      Simcore.Tracer.instant s "region.hide"
        ~args:
          [
            ("space", Simcore.Tracer.Int t.id);
            ("vpn", Simcore.Tracer.Int (region.Region.start_vpn + first));
            ("pages", Simcore.Tracer.Int pages);
          ]);
  for i = first to first + pages - 1 do
    let vpn = region.Region.start_vpn + i in
    match Page_table.find t.pt vpn with
    | Some pte -> pte.Page_table.prot <- Prot.No_access
    | None -> ()
  done

let reinstate t region =
  traced t (fun s ->
      Simcore.Tracer.instant s "region.reinstate"
        ~args:
          [
            ("space", Simcore.Tracer.Int t.id);
            ("vpn", Simcore.Tracer.Int region.Region.start_vpn);
            ("pages", Simcore.Tracer.Int region.Region.npages);
          ]);
  iter_region_vpns region (fun vpn ->
      match Page_table.find t.pt vpn with
      | Some pte -> pte.Page_table.prot <- Prot.Read_write
      | None -> ())

let resident_frames (region : Region.t) =
  let acc = ref [] in
  for i = region.Region.npages - 1 downto 0 do
    match Memory_object.find_local region.Region.obj i with
    | Some (Memory_object.Resident frame) -> acc := frame :: !acc
    | Some (Memory_object.Swapped _) | None -> ()
  done;
  !acc

(* Wiring pins the frames backing a virtual page range.  Residency can
   change while a wiring is active — COW and TCOW breaks replace the
   resident frame, faults materialize swapped or chain-shared pages
   into the top object — so each wiring logs the exact frame set it
   pinned on the region, and unwire decrements precisely that set.  A
   residency snapshot taken at unwire time would decrement frames that
   were never wired (and strand the counts of frames displaced
   mid-flight). *)

let log_wiring (region : Region.t) key frames =
  region.Region.wire_log <- (fst key, snd key, frames) :: region.Region.wire_log

let pop_wiring (region : Region.t) key =
  let rec go acc = function
    | [] -> None
    | (f, p, frames) :: rest when (f, p) = key ->
      region.Region.wire_log <- List.rev_append acc rest;
      Some frames
    | e :: rest -> go (e :: acc) rest
  in
  go [] region.Region.wire_log

let wire_frames t frames =
  List.iter
    (fun (frame : Memory.Frame.t) ->
      frame.Memory.Frame.wired <- frame.Memory.Frame.wired + 1;
      Memory.Pageout.unregister t.vm.Vm_sys.pageout frame)
    frames

let unwire_frames t (region : Region.t) frames =
  List.iter
    (fun (frame : Memory.Frame.t) ->
      frame.Memory.Frame.wired <- frame.Memory.Frame.wired - 1;
      if frame.Memory.Frame.wired = 0 && region.Region.obj.Memory_object.pageable
      then Memory.Pageout.register t.vm.Vm_sys.pageout frame)
    frames

(* The whole-region wiring's log key; range wirings use (first, pages). *)
let whole_region = (-1, -1)

let wire t (region : Region.t) =
  region.Region.wired <- region.Region.wired + 1;
  let frames = resident_frames region in
  log_wiring region whole_region frames;
  wire_frames t frames

let unwire t (region : Region.t) =
  if region.Region.wired <= 0 then invalid_arg "Address_space.unwire: not wired";
  region.Region.wired <- region.Region.wired - 1;
  match pop_wiring region whole_region with
  | Some frames -> unwire_frames t region frames
  | None -> invalid_arg "Address_space.unwire: no whole-region wiring active"

let range_frames (region : Region.t) ~first ~pages =
  page_range_check region ~first ~pages;
  let acc = ref [] in
  for i = first + pages - 1 downto first do
    match Memory_object.find_local region.Region.obj i with
    | Some (Memory_object.Resident frame) -> acc := frame :: !acc
    | Some (Memory_object.Swapped _) | None -> ()
  done;
  !acc

let wire_range t (region : Region.t) ~first ~pages =
  region.Region.wired <- region.Region.wired + 1;
  let frames = range_frames region ~first ~pages in
  log_wiring region (first, pages) frames;
  wire_frames t frames

let unwire_range t (region : Region.t) ~first ~pages =
  if region.Region.wired <= 0 then invalid_arg "Address_space.unwire_range: not wired";
  region.Region.wired <- region.Region.wired - 1;
  match pop_wiring region (first, pages) with
  | Some frames -> unwire_frames t region frames
  | None ->
    invalid_arg "Address_space.unwire_range: no matching range wiring active"

let swap_into_region t (region : Region.t) ~page frame =
  page_range_check region ~first:page ~pages:1;
  match Memory_object.find_local region.Region.obj page with
  | Some (Memory_object.Resident _) ->
    let displaced = Vm_sys.replace_page t.vm region.Region.obj page frame in
    Page_table.map t.pt ~vpn:(region.Region.start_vpn + page) ~frame
      ~prot:Prot.Read_write;
    Some displaced
  | Some (Memory_object.Swapped slot) ->
    (* The old page was paged out; its stale contents are dead. *)
    Memory.Backing_store.free t.vm.Vm_sys.backing slot;
    Vm_sys.insert_page t.vm region.Region.obj page frame;
    Page_table.map t.pt ~vpn:(region.Region.start_vpn + page) ~frame
      ~prot:Prot.Read_write;
    None
  | None ->
    Vm_sys.insert_page t.vm region.Region.obj page frame;
    Page_table.map t.pt ~vpn:(region.Region.start_vpn + page) ~frame
      ~prot:Prot.Read_write;
    None

let map_object_pages t (region : Region.t) =
  for i = 0 to region.Region.npages - 1 do
    match Memory_object.find_local region.Region.obj i with
    | Some (Memory_object.Resident frame) ->
      Page_table.map t.pt ~vpn:(region.Region.start_vpn + i) ~frame
        ~prot:Prot.Read_write
    | Some (Memory_object.Swapped _) | None -> ()
  done

let ensure_region t (region : Region.t) ~frames =
  if region.Region.valid then region
  else begin
    (* The application removed the region while input was pending; the
       frames were only zombie-deallocated thanks to I/O-deferred page
       deallocation.  Adopt them into a fresh region. *)
    let phys = t.vm.Vm_sys.phys in
    let obj = Memory_object.create ~pageable:region.Region.obj.Memory_object.pageable () in
    let fresh =
      Region.make ~start_vpn:t.next_vpn ~npages:region.Region.npages
        ~state:region.Region.state ~obj
    in
    t.next_vpn <- t.next_vpn + fresh.Region.npages + 1;
    t.region_list <- t.region_list @ [ fresh ];
    invalidate_lookup t;
    List.iteri
      (fun i frame ->
        Memory.Phys_mem.adopt phys frame;
        Vm_sys.insert_page t.vm obj i frame;
        Page_table.map t.pt ~vpn:(fresh.Region.start_vpn + i) ~frame
          ~prot:Prot.Read_write)
      frames;
    fresh
  end

(* {1 Fork-style cloning with input-disabled COW} *)

let clone_cow t =
  let child = create t.vm in
  child.next_vpn <- t.next_vpn;
  let clone_region (r : Region.t) =
    if Memory_object.chain_input_refs r.Region.obj > 0 then begin
      (* Input-disabled COW: pending DMA input would bypass write faults,
         so share semantics would leak through.  Copy physically. *)
      let obj = Memory_object.create ~pageable:r.Region.obj.Memory_object.pageable () in
      let fresh = Region.make ~start_vpn:r.Region.start_vpn ~npages:r.Region.npages
          ~state:r.Region.state ~obj
      in
      for i = 0 to r.Region.npages - 1 do
        match Memory_object.find_chain r.Region.obj i with
        | Some (owner, _) ->
          let src = Vm_sys.materialize t.vm owner i in
          let dst = alloc_for_copy t src in
          Memory.Frame.copy_contents ~src ~dst;
          Vm_sys.insert_page child.vm obj i dst;
          Page_table.map child.pt ~vpn:(fresh.Region.start_vpn + i) ~frame:dst
            ~prot:Prot.Read_write
        | None -> ()
      done;
      fresh
    end
    else begin
      (* Conventional COW: both sides get shadows over the old object and
         drop to read-only mappings of the shared pages. *)
      let original = r.Region.obj in
      let parent_shadow = Memory_object.shadow_of original in
      let child_shadow = Memory_object.shadow_of original in
      r.Region.obj <- parent_shadow;
      let fresh = Region.make ~start_vpn:r.Region.start_vpn ~npages:r.Region.npages
          ~state:r.Region.state ~obj:child_shadow
      in
      for i = 0 to r.Region.npages - 1 do
        let vpn = r.Region.start_vpn + i in
        match Memory_object.find_local original i with
        | Some (Memory_object.Resident frame) ->
          (match Page_table.find t.pt vpn with
          | Some pte -> pte.Page_table.prot <- Prot.Read_only
          | None -> ());
          Page_table.map child.pt ~vpn ~frame ~prot:Prot.Read_only
        | Some (Memory_object.Swapped _) | None -> ()
      done;
      fresh
    end
  in
  child.region_list <- List.map clone_region t.region_list;
  invalidate_lookup child;
  child

(* {1 Region caching} *)

let cache_region t (region : Region.t) =
  match region.Region.state with
  | Region.Moved_out -> Queue.add region t.moved_out_q
  | Region.Weakly_moved_out -> Queue.add region t.weak_q
  | Region.Unmovable | Region.Moved_in | Region.Moving_in | Region.Moving_out ->
    invalid_arg "Address_space.cache_region: region not in a cached state"

let dequeue_cached t ~kind ~npages =
  let q =
    match kind with
    | Region.Moved_out -> t.moved_out_q
    | Region.Weakly_moved_out -> t.weak_q
    | Region.Unmovable | Region.Moved_in | Region.Moving_in | Region.Moving_out ->
      invalid_arg "Address_space.dequeue_cached: not a cached kind"
  in
  (* Skip removed regions and regions of the wrong size; wrong-size live
     regions are requeued behind. *)
  let rec hunt budget requeue =
    if budget = 0 then None
    else
      match Queue.take_opt q with
      | None -> None
      | Some r when not r.Region.valid -> hunt (budget - 1) requeue
      | Some r when r.Region.npages = npages && r.Region.state = kind -> Some r
      | Some r ->
        Queue.add r requeue;
        hunt (budget - 1) requeue
  in
  let requeue = Queue.create () in
  let found = hunt (Queue.length q) requeue in
  Queue.transfer requeue q;
  found

let destroy t =
  List.iter (fun r -> remove_region t r) (List.filter (fun (r : Region.t) -> r.Region.valid) t.region_list)
