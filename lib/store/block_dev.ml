module C = Machine.Cost_model
module T = Simcore.Sim_time

type t = {
  engine : Simcore.Engine.t;
  costs : C.t;
  vm : Vm.Vm_sys.t;
  phys : Memory.Phys_mem.t;
  page_size : int;
  media : (int, bytes) Hashtbl.t;
  mutable busy_until : T.t;
  mutable next_at : int;  (* arm position: the block after the last transfer *)
  mutable in_flight : int;
  mutable reads : int;
  mutable writes : int;
  mutable seeks : int;
  mutable trace : Simcore.Tracer.scope option;
}

let create engine costs ~vm =
  {
    engine;
    costs;
    vm;
    phys = vm.Vm.Vm_sys.phys;
    page_size = (C.spec costs).Machine.Machine_spec.page_size;
    media = Hashtbl.create 256;
    busy_until = T.zero;
    next_at = 0;
    in_flight = 0;
    reads = 0;
    writes = 0;
    seeks = 0;
    trace = None;
  }

let set_trace_scope t scope = t.trace <- Some scope
let page_size t = t.page_size
let reads t = t.reads
let writes t = t.writes
let seeks t = t.seeks
let in_flight t = t.in_flight
let busy_until t = t.busy_until
let peek_block t block = Hashtbl.find_opt t.media block

let counter t ?(n = 1) name =
  match t.trace with
  | Some s -> Simcore.Tracer.add_counter s ~n name
  | None -> ()

let media_block t block =
  match Hashtbl.find_opt t.media block with
  | Some b -> b
  | None ->
    let b = Bytes.make t.page_size '\000' in
    Hashtbl.add t.media block b;
    b

let submit t ~dir ~block ~frames ~on_complete =
  let n = List.length frames in
  if n = 0 then invalid_arg "Block_dev.submit: empty request";
  let now = Simcore.Engine.now t.engine in
  let start = T.max now t.busy_until in
  let seeking = block <> t.next_at in
  let seek = if seeking then C.cost t.costs C.Disk_seek ~bytes:0 else T.zero in
  if seeking then begin
    t.seeks <- t.seeks + 1;
    counter t "disk_seeks"
  end;
  let op = match dir with `Read -> C.Disk_read | `Write -> C.Disk_write in
  let dur = T.add seek (C.cost t.costs op ~bytes:(n * t.page_size)) in
  let finish = T.add start dur in
  t.busy_until <- finish;
  t.next_at <- block + n;
  t.in_flight <- t.in_flight + 1;
  (* The in-flight request is a live page-referencing handle: register
     it with the VM so the io-refcounts invariant can account for the
     references it holds. *)
  let io_id =
    match dir with
    | `Read ->
      t.reads <- t.reads + n;
      counter t ~n "disk_reads";
      List.iter (Memory.Phys_mem.ref_input t.phys) frames;
      Vm.Vm_sys.register_io t.vm ~dir:Vm.Vm_sys.Io_input ~frames ~objects:[]
    | `Write ->
      t.writes <- t.writes + n;
      counter t ~n "disk_writes";
      List.iter (Memory.Phys_mem.ref_output t.phys) frames;
      Vm.Vm_sys.register_io t.vm ~dir:Vm.Vm_sys.Io_output ~frames ~objects:[]
  in
  (match t.trace with
  | Some s when Simcore.Tracer.on s ->
    Simcore.Tracer.complete s ~start ~dur
      ~args:
        [ ("block", Simcore.Tracer.Int block); ("blocks", Simcore.Tracer.Int n) ]
      (match dir with `Read -> "dev.read" | `Write -> "dev.write")
  | _ -> ());
  Simcore.Engine.at t.engine ~time:finish (fun () ->
      List.iteri
        (fun i frame ->
          let page = media_block t (block + i) in
          match dir with
          | `Read ->
            Memory.Frame.blit_in frame ~dst_off:0 ~src:page ~src_off:0
              ~len:t.page_size
          | `Write ->
            Memory.Frame.blit_out frame ~src_off:0 ~dst:page ~dst_off:0
              ~len:t.page_size)
        frames;
      (match dir with
      | `Read -> List.iter (Memory.Phys_mem.unref_input t.phys) frames
      | `Write -> List.iter (Memory.Phys_mem.unref_output t.phys) frames);
      Vm.Vm_sys.forget_io t.vm io_id;
      t.in_flight <- t.in_flight - 1;
      on_complete ())

let flush t ~on_complete =
  let now = Simcore.Engine.now t.engine in
  let start = T.max now t.busy_until in
  let dur = C.cost t.costs C.Fsync_barrier ~bytes:0 in
  let finish = T.add start dur in
  t.busy_until <- finish;
  (match t.trace with
  | Some s when Simcore.Tracer.on s ->
    Simcore.Tracer.complete s ~start ~dur ~args:[] "dev.flush"
  | _ -> ());
  Simcore.Engine.at t.engine ~time:finish on_complete
