module C = Machine.Cost_model

type mapping = {
  m_fd : int;
  m_space : Vm.Address_space.t;
  m_region : Vm.Region.t;
  m_pages : int;
  m_reused : bool;
}

let fd m = m.m_fd
let region m = m.m_region
let npages m = m.m_pages
let reused m = m.m_reused

let base m =
  Vm.Address_space.base_addr m.m_region
    ~page_size:(Vm.Address_space.page_size m.m_space)

let map cache ~space ~fd ~on_ready =
  let psize = Page_cache.page_size cache in
  let size = Page_cache.file_size cache fd in
  let npages = max 1 ((size + psize - 1) / psize) in
  let chg = Page_cache.charging cache in
  Page_cache.read cache ~fd ~off:0 ~len:size ~on_complete:(fun desc ->
      let reused_region =
        Vm.Address_space.dequeue_cached space ~kind:Vm.Region.Weakly_moved_out
          ~npages
      in
      let region, reused =
        match reused_region with
        | Some r ->
          chg.Page_cache.charge C.Region_check ~bytes:0;
          r.Vm.Region.state <- Vm.Region.Moved_in;
          Vm.Address_space.reinstate space r;
          (r, true)
        | None ->
          chg.Page_cache.charge C.Region_create ~bytes:0;
          (Vm.Address_space.map_region space ~state:Vm.Region.Moved_in ~npages,
           false)
      in
      let addr = Vm.Address_space.base_addr region ~page_size:psize in
      if size > 0 then begin
        chg.Page_cache.charge C.Copyin ~bytes:size;
        Vm.Address_space.write_iov space ~addr (Memory.Io_desc.to_iovec desc)
      end;
      chg.Page_cache.charge_n C.Read_only ~bytes:psize ~n:npages;
      Vm.Address_space.make_readonly space region ~first:0 ~pages:npages;
      on_ready
        { m_fd = fd; m_space = space; m_region = region; m_pages = npages;
          m_reused = reused })

let sync cache m ~on_complete =
  let size = Page_cache.file_size cache m.m_fd in
  if size = 0 then begin
    Simcore.Engine.schedule
      (Page_cache.engine cache)
      ~delay:Simcore.Sim_time.zero on_complete;
    Ok ()
  end
  else begin
    let len = min size (m.m_pages * Page_cache.page_size cache) in
    let data = Vm.Address_space.read m.m_space ~addr:(base m) ~len in
    Page_cache.write cache ~fd:m.m_fd ~off:0 ~data ~on_complete
  end

let unmap _cache m =
  m.m_region.Vm.Region.state <- Vm.Region.Weakly_moved_out;
  Vm.Address_space.invalidate m.m_space m.m_region ~first:0 ~pages:m.m_pages;
  Vm.Address_space.cache_region m.m_space m.m_region
