(** Simulated block device.

    One request queue feeding one disk arm: requests serialize on a
    [busy_until] clock exactly like {!Simcore.Cpu} serializes kernel
    work.  Each request is a run of whole, consecutive blocks (one block
    = one page frame).  A request that does not start at the block after
    the previous transfer pays the seek-plus-rotational fixed cost
    ({!Machine.Cost_model.Disk_seek}); every request pays the
    per-command overhead and the media transfer rate
    ({!Machine.Cost_model.Disk_read}/[Disk_write]).

    DMA discipline mirrors the network adapter: frames involved in a
    read hold an {e input} reference for the duration of the transfer
    (input-disabled pageout applies to them), frames involved in a
    write hold an {e output} reference; both drop at completion, so
    I/O-deferred deallocation covers storage DMA too.  Each in-flight
    request is registered as a {!Vm.Vm_sys.io_view}, so the
    [io-refcounts] invariant audits storage DMA alongside network DMA.
    Bytes move at completion time — reads scatter media contents into
    the frames, writes gather frame contents onto the media — so what
    lands is what the frame held when the transfer retired. *)

type t

val create : Simcore.Engine.t -> Machine.Cost_model.t -> vm:Vm.Vm_sys.t -> t
(** Media starts empty; absent blocks read as zeros. *)

val set_trace_scope : t -> Simcore.Tracer.scope -> unit
(** Install a (store-subsystem) scope: per-request [Complete] spans plus
    [disk_reads]/[disk_writes]/[disk_seeks] counters. *)

val page_size : t -> int

val submit :
  t ->
  dir:[ `Read | `Write ] ->
  block:int ->
  frames:Memory.Frame.t list ->
  on_complete:(unit -> unit) ->
  unit
(** Queue one contiguous transfer of [List.length frames] blocks
    starting at [block].  [on_complete] fires at the simulated
    completion instant, after the data motion and reference drops. *)

val flush : t -> on_complete:(unit -> unit) -> unit
(** Cache-flush barrier ({!Machine.Cost_model.Fsync_barrier}): occupies
    the device after everything already queued, completing only when
    all prior transfers have retired. *)

val reads : t -> int
(** Blocks transferred by read requests so far. *)

val writes : t -> int
(** Blocks transferred by write requests so far. *)

val seeks : t -> int
(** Requests that paid the seek cost. *)

val in_flight : t -> int
(** Transfers submitted but not yet completed. *)

val busy_until : t -> Simcore.Sim_time.t

val peek_block : t -> int -> bytes option
(** Media contents of one block, if ever written (tests). *)
