(** Simulated page cache over the block device.

    Files are page-granular views onto device blocks (a bump allocator
    lays sequentially-grown files onto contiguous blocks).  The cache
    holds file pages in real {!Memory.Frame.t}s, so cached bytes are the
    same bytes DMA and network transmission touch — zero-copy file reads
    hand out {!Memory.Io_desc.t} scatter lists over cache frames.

    The policy machinery reproduces the classic buffered-write regimes
    of the paper's CAWL analysis:

    - {e cached writes} cost one copyin plus per-page lookups and
      complete at CPU speed; dirty pages accumulate and are written
      back in batches, either by the interval flusher or when the dirty
      count crosses [dirty_high];
    - {e bandwidth-dominated writes}: once the dirty count exceeds
      [dirty_throttle], write completions queue behind writeback
      progress, so sustained writers observe media bandwidth instead of
      memory bandwidth;
    - {e fsync} forces the file's dirty pages out and then a device
      flush barrier, exposing the full seek-plus-transfer stall.

    Reads miss into device transfers with a windowed sequential
    detector issuing best-effort read-ahead.  Frame allocation is
    injected (the Genie host wires it to its exhaustion-aware
    allocator), and when neither allocation nor eviction of a clean
    page can produce a frame, admission fails with the shared typed
    backpressure outcome [`Again] — the same degradation contract as
    the network paths.  All iteration over cache state is sorted before
    effects, so runs are bit-deterministic. *)

type config = {
  max_pages : int;  (** cache capacity in page frames *)
  readahead_window : int;  (** pages fetched ahead of a sequential run *)
  readahead_min_run : int;  (** run length that triggers read-ahead *)
  writeback_interval_us : float;  (** periodic flusher tick *)
  dirty_high : int;  (** dirty pages that trigger immediate writeback *)
  dirty_throttle : int;
      (** dirty pages beyond which write completions queue behind
          writeback (the bandwidth-dominated regime) *)
}

val default_config : config

type charging = {
  charge : Machine.Cost_model.op -> bytes:int -> unit;
  charge_n : Machine.Cost_model.op -> bytes:int -> n:int -> unit;
  charged_until : unit -> Simcore.Sim_time.t;
}
(** CPU charging callbacks; the Genie host wires these to {!Ops} so
    cache work queues on the host CPU and lands in Table 6 samples. *)

type t

val create :
  ?config:config ->
  engine:Simcore.Engine.t ->
  dev:Block_dev.t ->
  charging:charging ->
  alloc_frame:(unit -> Memory.Frame.t option) ->
  free_frame:(Memory.Frame.t -> unit) ->
  unit ->
  t
(** [alloc_frame] may fail ([None]) under exhaustion — the cache then
    falls back to evicting a clean page, and failing that rejects the
    operation with [`Again].  [free_frame] returns frames dropped by
    {!drop_caches} (capacity evictions recycle frames in place). *)

val set_trace_scope : t -> Simcore.Tracer.scope -> unit
(** Store-subsystem counters: [cache_hits], [cache_misses],
    [readaheads], [writebacks], [fsyncs], [cache_evictions],
    [wb_throttles], [store_rejects]. *)

val page_size : t -> int
val dev : t -> Block_dev.t
val engine : t -> Simcore.Engine.t
val charging : t -> charging

val open_file : t -> int
(** Create an empty file; returns its descriptor. *)

val file_size : t -> int -> int

val read :
  t ->
  fd:int ->
  off:int ->
  len:int ->
  on_complete:(Memory.Io_desc.t -> unit) ->
  (unit, [ `Again ]) result
(** Read [len] bytes at [off] (clamped to EOF).  [on_complete] receives
    a scatter list aliasing the cache frames — a zero-copy view sliced
    exactly to the requested range — once every page is resident: at
    the CPU retire instant for pure hits, at device completion for
    misses.  The frames are pinned against eviction until the callback
    is invoked; consume the descriptor promptly (add I/O references for
    anything longer-lived, as sendfile does).  [Error `Again]: a missing
    page could not be admitted; nothing changed and the callback will
    not fire. *)

val write :
  t ->
  fd:int ->
  off:int ->
  data:bytes ->
  on_complete:(unit -> unit) ->
  (unit, [ `Again ]) result
(** Buffered write.  Charges one {!Machine.Cost_model.Copyin} over the
    data plus per-page lookups; partial pages inside EOF read-modify-
    write through the device.  [on_complete] fires at CPU retire in the
    cached regime, but queues behind writeback progress once the dirty
    count exceeds [dirty_throttle].  Extends the file if the range ends
    beyond EOF. *)

val fsync : t -> fd:int -> on_complete:(unit -> unit) -> unit
(** Write back the file's dirty pages, then issue a device flush
    barrier; [on_complete] fires when the barrier retires. *)

val writeback_now : t -> unit
(** Kick an immediate writeback of everything dirty (the flusher's
    action, callable directly). *)

val drop_caches : t -> int
(** Evict every clean, unreferenced page (frames go back through
    [free_frame]); returns the number dropped.  Cold-read benchmarks
    use this between phases. *)

val cached_pages : t -> int
val dirty_pages : t -> int
val is_cached : t -> fd:int -> page:int -> bool
val is_dirty : t -> fd:int -> page:int -> bool
