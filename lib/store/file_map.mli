(** mmap-style file regions.

    [map] materializes a file into a fresh VM region — populated
    through the page cache, so cold maps pay device transfers and warm
    maps run at memory speed — and then arms TCOW on every page
    ({!Vm.Address_space.make_readonly}): the first store to a mapped
    page takes a write fault and resolves through the VM's TCOW
    machinery, exactly like an output buffer under emulated copy.

    [unmap] uses region hiding rather than removal: the region is
    marked weakly-moved-out, access is invalidated, and the region is
    parked on the address space's reuse queue.  A later [map] of the
    same page count dequeues it ({!Vm.Address_space.dequeue_cached}),
    paying a region check instead of a region create — the same reuse
    economics as weak-move networking, now on the storage path.

    [sync] writes the region's current contents back through the cache
    (msync): modified bytes become dirty cache pages subject to the
    ordinary writeback and fsync machinery. *)

type mapping

val fd : mapping -> int
val region : mapping -> Vm.Region.t
val npages : mapping -> int

val base : mapping -> int
(** First virtual address of the mapping. *)

val map :
  Page_cache.t ->
  space:Vm.Address_space.t ->
  fd:int ->
  on_ready:(mapping -> unit) ->
  (unit, [ `Again ]) result
(** Map the whole file (at least one page).  [on_ready] fires once the
    populating read retires and the region is armed; [Error `Again] is
    the cache's admission backpressure — nothing was mapped. *)

val sync :
  Page_cache.t -> mapping -> on_complete:(unit -> unit) -> (unit, [ `Again ]) result
(** Write the mapped bytes (clamped to the file size) back through the
    cache. *)

val unmap : Page_cache.t -> mapping -> unit

val reused : mapping -> bool
(** Whether [map] reused a cached region instead of creating one. *)
