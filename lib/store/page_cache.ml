module C = Machine.Cost_model

type config = {
  max_pages : int;
  readahead_window : int;
  readahead_min_run : int;
  writeback_interval_us : float;
  dirty_high : int;
  dirty_throttle : int;
}

let default_config =
  {
    max_pages = 256;
    readahead_window = 8;
    readahead_min_run = 2;
    writeback_interval_us = 30_000.;
    dirty_high = 64;
    dirty_throttle = 96;
  }

type charging = {
  charge : C.op -> bytes:int -> unit;
  charge_n : C.op -> bytes:int -> n:int -> unit;
  charged_until : unit -> Simcore.Sim_time.t;
}

type entry = {
  e_fd : int;
  e_page : int;
  frame : Memory.Frame.t;
  mutable lru : int;  (* unique access stamp; eviction takes the minimum *)
  mutable pins : int;  (* reads in progress over this page *)
  mutable dirty : bool;
  mutable epoch : int;  (* bumped per dirtying; writeback compares at retire *)
  mutable wb_epoch : int option;  (* epoch snapshot of an in-flight writeback *)
  mutable filling : bool;  (* device read into the frame in flight *)
  mutable fill_waiters : (unit -> unit) list;
  mutable clean_waiters : (unit -> unit) list;
}

type file_rec = {
  fd : int;
  mutable size : int;
  blocks : (int, int) Hashtbl.t;  (* page index -> device block *)
  mutable seq_next : int;  (* sequential detector: expected next page *)
  mutable seq_run : int;
}

type t = {
  engine : Simcore.Engine.t;
  dev : Block_dev.t;
  cfg : config;
  page_size : int;
  chg : charging;
  alloc_frame : unit -> Memory.Frame.t option;
  free_frame : Memory.Frame.t -> unit;
  table : (int * int, entry) Hashtbl.t;
  files : (int, file_rec) Hashtbl.t;
  mutable next_fd : int;
  mutable next_block : int;
  mutable lru_clock : int;
  mutable dirty_count : int;
  mutable flusher_armed : bool;
  throttled : (unit -> unit) Queue.t;
  mutable trace : Simcore.Tracer.scope option;
}

let create ?(config = default_config) ~engine ~dev ~charging ~alloc_frame
    ~free_frame () =
  {
    engine;
    dev;
    cfg = config;
    page_size = Block_dev.page_size dev;
    chg = charging;
    alloc_frame;
    free_frame;
    table = Hashtbl.create 256;
    files = Hashtbl.create 8;
    next_fd = 3;
    next_block = 0;
    lru_clock = 0;
    dirty_count = 0;
    flusher_armed = false;
    throttled = Queue.create ();
    trace = None;
  }

let set_trace_scope t scope = t.trace <- Some scope
let page_size t = t.page_size
let dev t = t.dev
let engine t = t.engine
let charging t = t.chg
let cached_pages t = Hashtbl.length t.table
let dirty_pages t = t.dirty_count
let is_cached t ~fd ~page = Hashtbl.mem t.table (fd, page)

let is_dirty t ~fd ~page =
  match Hashtbl.find_opt t.table (fd, page) with
  | Some e -> e.dirty
  | None -> false

let counter t ?(n = 1) name =
  match t.trace with
  | Some s when n > 0 -> Simcore.Tracer.add_counter s ~n name
  | _ -> ()

let open_file t =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.add t.files fd
    { fd; size = 0; blocks = Hashtbl.create 32; seq_next = 0; seq_run = 0 };
  fd

let file t fd =
  match Hashtbl.find_opt t.files fd with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Page_cache: unknown fd %d" fd)

let file_size t fd = (file t fd).size

let block_for t fr page =
  match Hashtbl.find_opt fr.blocks page with
  | Some b -> b
  | None ->
    let b = t.next_block in
    t.next_block <- b + 1;
    Hashtbl.add fr.blocks page b;
    b

let entry t fd page = Hashtbl.find t.table (fd, page)

let touch t e =
  t.lru_clock <- t.lru_clock + 1;
  e.lru <- t.lru_clock

let insert t fd page frame ~filling =
  let e =
    {
      e_fd = fd;
      e_page = page;
      frame;
      lru = 0;
      pins = 0;
      dirty = false;
      epoch = 0;
      wb_epoch = None;
      filling;
      fill_waiters = [];
      clean_waiters = [];
    }
  in
  touch t e;
  Hashtbl.add t.table (fd, page) e;
  e

let by_location a b = compare (a.e_fd, a.e_page) (b.e_fd, b.e_page)

(* Group sorted entries into runs of consecutive device blocks: one
   run, one device request. *)
let group_runs t es =
  let blk e = block_for t (file t e.e_fd) e.e_page in
  match List.sort by_location es with
  | [] -> []
  | e0 :: rest ->
    let b0 = blk e0 in
    let rec go acc run run_b0 prev_b prev = function
      | [] -> List.rev ((run_b0, List.rev run) :: acc)
      | e :: tl ->
        let b = blk e in
        if e.e_fd = prev.e_fd && b = prev_b + 1 then
          go acc (e :: run) run_b0 b e tl
        else go ((run_b0, List.rev run) :: acc) [ e ] b b e tl
    in
    go [] [ e0 ] b0 b0 e0 rest

let submit_reads t es =
  List.iter
    (fun (b0, run) ->
      Block_dev.submit t.dev ~dir:`Read ~block:b0
        ~frames:(List.map (fun e -> e.frame) run)
        ~on_complete:(fun () ->
          List.iter
            (fun e ->
              e.filling <- false;
              let ws = List.rev e.fill_waiters in
              e.fill_waiters <- [];
              List.iter (fun k -> k ()) ws)
            run))
    (group_runs t es)

(* The flusher, batched writeback and write-throttling form one knot:
   writeback completions drain throttled writers and re-arm the flusher
   while anything stays dirty (a page re-dirtied mid-flight survives the
   epoch check and needs another pass). *)
let rec arm_flusher t =
  if not t.flusher_armed then begin
    t.flusher_armed <- true;
    Simcore.Engine.schedule t.engine
      ~delay:(Simcore.Sim_time.of_us t.cfg.writeback_interval_us) (fun () ->
        t.flusher_armed <- false;
        if t.dirty_count > 0 then begin
          kick_writeback t;
          arm_flusher t
        end)
  end

and kick_writeback t =
  let dirty =
    Hashtbl.fold
      (fun _ e acc ->
        if e.dirty && e.wb_epoch = None && not e.filling then e :: acc else acc)
      t.table []
  in
  List.iter
    (fun (b0, run) ->
      List.iter (fun e -> e.wb_epoch <- Some e.epoch) run;
      counter t ~n:(List.length run) "writebacks";
      Block_dev.submit t.dev ~dir:`Write ~block:b0
        ~frames:(List.map (fun e -> e.frame) run)
        ~on_complete:(fun () ->
          List.iter
            (fun e ->
              (match e.wb_epoch with
              | Some ep when e.dirty && ep = e.epoch ->
                e.dirty <- false;
                t.dirty_count <- t.dirty_count - 1;
                let ws = List.rev e.clean_waiters in
                e.clean_waiters <- [];
                List.iter (fun k -> k ()) ws
              | _ -> ());
              e.wb_epoch <- None)
            run;
          drain_throttled t;
          if t.dirty_count > 0 then arm_flusher t))
    (group_runs t dirty)

and drain_throttled t =
  while
    t.dirty_count <= t.cfg.dirty_throttle && not (Queue.is_empty t.throttled)
  do
    (Queue.pop t.throttled) ()
  done

let writeback_now = kick_writeback

let evictable e =
  e.pins = 0 && (not e.dirty) && (not e.filling) && e.wb_epoch = None
  && not (Memory.Frame.io_referenced e.frame)

(* Coldest clean page; the lru stamp is unique, so the winner is
   independent of hash iteration order. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        if evictable e then
          match acc with Some b when b.lru <= e.lru -> acc | _ -> Some e
        else acc)
      t.table None
  in
  match victim with
  | Some e ->
    Hashtbl.remove t.table (e.e_fd, e.e_page);
    counter t "cache_evictions";
    Some e.frame
  | None -> None

(* One frame for a new page: evict when at capacity, allocate below it,
   fall back to eviction under exhaustion, and as a last resort kick
   writeback (to mint clean pages for a later retry) and fail.
   [extra] counts frames already claimed for the same operation but not
   yet inserted. *)
let take_frame t ~extra =
  let at_capacity = Hashtbl.length t.table + extra >= t.cfg.max_pages in
  let evicted = if at_capacity then evict_one t else None in
  match evicted with
  | Some _ as f -> f
  | None -> (
    match t.alloc_frame () with
    | Some _ as f -> f
    | None -> (
      match evict_one t with
      | Some _ as f -> f
      | None ->
        kick_writeback t;
        None))

let grab_frames t n =
  let rec go acc k =
    if k = n then Some (List.rev acc)
    else
      match take_frame t ~extra:k with
      | Some f -> go (f :: acc) (k + 1)
      | None ->
        List.iter t.free_frame acc;
        None
  in
  if n = 0 then Some [] else go [] 0

let mark_dirty t e =
  e.epoch <- e.epoch + 1;
  if not e.dirty then begin
    e.dirty <- true;
    t.dirty_count <- t.dirty_count + 1;
    t.chg.charge C.Writeback_schedule ~bytes:0;
    arm_flusher t
  end

let missing_pages t fd ~p0 ~p1 =
  let acc = ref [] in
  for p = p1 downto p0 do
    if not (Hashtbl.mem t.table (fd, p)) then acc := p :: !acc
  done;
  !acc

(* Scatter list over the cache frames, sliced to [off, off+len). *)
let desc_of_range t fd ~off ~len =
  let p0 = off / t.page_size and p1 = (off + len - 1) / t.page_size in
  let segs = ref [] in
  for p = p1 downto p0 do
    let e = entry t fd p in
    let page_start = p * t.page_size in
    let s = max off page_start
    and fin = min (off + len) (page_start + t.page_size) in
    segs :=
      { Memory.Io_desc.frame = e.frame; off = s - page_start; len = fin - s }
      :: !segs
  done;
  Memory.Io_desc.of_segs !segs

let note_access t fr ~p0 ~p1 =
  if p0 = fr.seq_next then fr.seq_run <- fr.seq_run + (p1 - p0 + 1)
  else fr.seq_run <- p1 - p0 + 1;
  fr.seq_next <- p1 + 1;
  if fr.seq_run >= t.cfg.readahead_min_run && t.cfg.readahead_window > 0 then begin
    let last_page = if fr.size = 0 then -1 else (fr.size - 1) / t.page_size in
    let lo = p1 + 1 in
    let hi = min (lo + t.cfg.readahead_window - 1) last_page in
    let wanted = if lo > hi then [] else missing_pages t fr.fd ~p0:lo ~p1:hi in
    (* Best-effort: stop at the first frame we cannot get, never fail
       the read that triggered us. *)
    let rec go acc k = function
      | [] -> List.rev acc
      | p :: rest -> (
        match take_frame t ~extra:k with
        | Some f -> go ((p, f) :: acc) (k + 1) rest
        | None -> List.rev acc)
    in
    let got = go [] 0 wanted in
    if got <> [] then begin
      t.chg.charge_n C.Readahead_issue ~bytes:0 ~n:(List.length got);
      counter t ~n:(List.length got) "readaheads";
      submit_reads t
        (List.map (fun (p, f) -> insert t fr.fd p f ~filling:true) got)
    end
  end

let read t ~fd ~off ~len ~on_complete =
  let fr = file t fd in
  if off < 0 || len < 0 then invalid_arg "Page_cache.read: negative range";
  let len = min len (max 0 (fr.size - off)) in
  if len = 0 then begin
    t.chg.charge C.Cache_lookup ~bytes:0;
    Simcore.Engine.at t.engine
      ~time:(t.chg.charged_until ())
      (fun () -> on_complete (Memory.Io_desc.of_segs []));
    Ok ()
  end
  else begin
    let p0 = off / t.page_size and p1 = (off + len - 1) / t.page_size in
    let npages = p1 - p0 + 1 in
    (* Pin resident pages first so admitting the missing ones cannot
       evict them out from under this very read. *)
    let resident = ref [] in
    for p = p1 downto p0 do
      match Hashtbl.find_opt t.table (fd, p) with
      | Some e ->
        e.pins <- e.pins + 1;
        touch t e;
        resident := e :: !resident
      | None -> ()
    done;
    let missing = missing_pages t fd ~p0 ~p1 in
    match grab_frames t (List.length missing) with
    | None ->
      List.iter (fun e -> e.pins <- e.pins - 1) !resident;
      counter t "store_rejects";
      Error `Again
    | Some frames ->
      t.chg.charge_n C.Cache_lookup ~bytes:0 ~n:npages;
      counter t ~n:(npages - List.length missing) "cache_hits";
      counter t ~n:(List.length missing) "cache_misses";
      let news =
        List.map2
          (fun p f ->
            let e = insert t fd p f ~filling:true in
            e.pins <- e.pins + 1;
            e)
          missing frames
      in
      submit_reads t news;
      note_access t fr ~p0 ~p1;
      let pending = ref 1 in
      let fire () =
        let desc = desc_of_range t fd ~off ~len in
        for p = p0 to p1 do
          let e = entry t fd p in
          e.pins <- e.pins - 1
        done;
        on_complete desc
      in
      let dec () =
        decr pending;
        if !pending = 0 then fire ()
      in
      for p = p0 to p1 do
        let e = entry t fd p in
        if e.filling then begin
          incr pending;
          e.fill_waiters <- dec :: e.fill_waiters
        end
      done;
      if !pending = 1 then
        Simcore.Engine.at t.engine ~time:(t.chg.charged_until ()) dec
      else dec ();
      Ok ()
  end

let write t ~fd ~off ~data ~on_complete =
  let fr = file t fd in
  let len = Bytes.length data in
  if off < 0 then invalid_arg "Page_cache.write: negative offset";
  if len = 0 then begin
    t.chg.charge C.Cache_lookup ~bytes:0;
    Simcore.Engine.at t.engine ~time:(t.chg.charged_until ()) on_complete;
    Ok ()
  end
  else begin
    let p0 = off / t.page_size and p1 = (off + len - 1) / t.page_size in
    let npages = p1 - p0 + 1 in
    let resident = ref [] in
    for p = p1 downto p0 do
      match Hashtbl.find_opt t.table (fd, p) with
      | Some e ->
        e.pins <- e.pins + 1;
        touch t e;
        resident := e :: !resident
      | None -> ()
    done;
    let missing = missing_pages t fd ~p0 ~p1 in
    let unpin () = List.iter (fun e -> e.pins <- e.pins - 1) !resident in
    match grab_frames t (List.length missing) with
    | None ->
      unpin ();
      counter t "store_rejects";
      Error `Again
    | Some frames ->
      t.chg.charge_n C.Cache_lookup ~bytes:0 ~n:npages;
      counter t ~n:(npages - List.length missing) "cache_hits";
      counter t ~n:(List.length missing) "cache_misses";
      t.chg.charge C.Copyin ~bytes:len;
      let news = Hashtbl.create 8 in
      List.iter2
        (fun p f -> Hashtbl.add news p (insert t fd p f ~filling:false))
        missing frames;
      let apply p e =
        let page_start = p * t.page_size in
        let s = max off page_start
        and fin = min (off + len) (page_start + t.page_size) in
        Memory.Frame.blit_in e.frame ~dst_off:(s - page_start) ~src:data
          ~src_off:(s - off) ~len:(fin - s);
        mark_dirty t e
      in
      let complete () =
        if t.dirty_count > t.cfg.dirty_throttle then begin
          counter t "wb_throttles";
          Queue.add on_complete t.throttled;
          kick_writeback t
        end
        else on_complete ()
      in
      let pending = ref 1 in
      let dec () =
        decr pending;
        if !pending = 0 then complete ()
      in
      let rmw = ref [] in
      for p = p0 to p1 do
        let e = entry t fd p in
        let page_start = p * t.page_size in
        let fully = off <= page_start && off + len >= page_start + t.page_size in
        match Hashtbl.find_opt news p with
        | Some _ when not fully ->
          Memory.Frame.fill e.frame '\000';
          if page_start < fr.size then begin
            (* Partial overwrite of existing data: read-modify-write. *)
            e.filling <- true;
            rmw := e :: !rmw;
            incr pending;
            e.fill_waiters <-
              (fun () ->
                apply p e;
                dec ())
              :: e.fill_waiters
          end
          else apply p e
        | Some _ -> apply p e
        | None ->
          if e.filling then begin
            incr pending;
            e.fill_waiters <-
              (fun () ->
                apply p e;
                dec ())
              :: e.fill_waiters
          end
          else apply p e
      done;
      unpin ();
      if !rmw <> [] then submit_reads t !rmw;
      fr.size <- max fr.size (off + len);
      if t.dirty_count >= t.cfg.dirty_high then kick_writeback t;
      if !pending = 1 then
        Simcore.Engine.at t.engine ~time:(t.chg.charged_until ()) dec
      else dec ();
      Ok ()
  end

let fsync t ~fd ~on_complete =
  ignore (file t fd);
  counter t "fsyncs";
  t.chg.charge C.Cache_lookup ~bytes:0;
  let dirty =
    Hashtbl.fold
      (fun _ e acc -> if e.e_fd = fd && e.dirty then e :: acc else acc)
      t.table []
    |> List.sort by_location
  in
  let barrier () = Block_dev.flush t.dev ~on_complete in
  if dirty = [] then
    Simcore.Engine.at t.engine ~time:(t.chg.charged_until ()) barrier
  else begin
    let remaining = ref (List.length dirty) in
    List.iter
      (fun e ->
        e.clean_waiters <-
          (fun () ->
            decr remaining;
            if !remaining = 0 then barrier ())
          :: e.clean_waiters)
      dirty;
    kick_writeback t
  end

let drop_caches t =
  let victims =
    Hashtbl.fold
      (fun _ e acc -> if evictable e then e :: acc else acc)
      t.table []
    |> List.sort by_location
  in
  List.iter
    (fun e ->
      Hashtbl.remove t.table (e.e_fd, e.e_page);
      t.free_frame e.frame)
    victims;
  counter t ~n:(List.length victims) "cache_evictions";
  List.length victims
